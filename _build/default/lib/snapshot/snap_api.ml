(* Abstract snapshot-object interface, in continuation-passing style.

   Every set-agreement algorithm in this repository is written against
   this interface and can therefore run over any of the implementations:

   - [Atomic]: scan is one atomic simulator step (the paper's model —
     Theorems 7/8/11 count snapshot components as registers, citing
     register implementations [1,5,13]);
   - [Double_collect]: honest register-level non-blocking snapshot;
   - [Mw_from_sw]: wait-free snapshot from n single-writer registers
     (the [min(·, n)] branch of Theorem 7).

   The API value is threaded through continuations ([update] passes a
   possibly-updated API to its continuation) so implementations can
   carry purely functional local state — sequence numbers, cached rows —
   without mutation.  Programs stay clonable values, which the
   lower-bound machinery requires. *)

type t = {
  components : int;
      (* number of snapshot components; component indices are
         [0 .. components-1] *)
  update : int -> Shm.Value.t -> (t -> Shm.Program.t) -> Shm.Program.t;
      (* [update i v k]: write [v] to component [i], continue with [k]. *)
  scan : (t -> Shm.Value.t array -> Shm.Program.t) -> Shm.Program.t;
      (* [scan k]: pass an atomic view of all components to [k]. *)
}

(* Description of how many raw registers an implementation consumes, for
   the space-accounting experiments. *)
type footprint = { registers : int; wait_free : bool; description : string }
