(** Single-writer atomic snapshot of Afek, Attiya, Dolev, Gafni,
    Merritt and Shavit (JACM 1993), unbounded-sequence-number version,
    over n single-writer registers with embedded-view helping.

    Register [off+p] is written only by process [p].  A scan either
    completes a clean double collect or borrows the embedded view of a
    register observed with three distinct sequence numbers (that
    writer's whole update, including its embedded scan, ran within our
    interval).  Wait-free: at most 2n+1 collects. *)

(** [scan ~off ~n k] passes the atomic data view (n segments) to [k]. *)
val scan : off:int -> n:int -> (Shm.Value.t array -> Shm.Program.t) -> Shm.Program.t

(** [update ~off ~n ~pid ~seq data k] installs [data] as process
    [pid]'s segment (performing the embedded scan first) and passes the
    new sequence number to [k]. *)
val update :
  off:int ->
  n:int ->
  pid:int ->
  seq:int ->
  Shm.Value.t ->
  (int -> Shm.Program.t) ->
  Shm.Program.t

val footprint : n:int -> Snap_api.footprint
