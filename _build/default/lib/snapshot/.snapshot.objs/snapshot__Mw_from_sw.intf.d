lib/snapshot/mw_from_sw.mli: Snap_api
