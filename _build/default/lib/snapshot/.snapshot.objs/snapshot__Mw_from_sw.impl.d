lib/snapshot/mw_from_sw.ml: Afek Array Fmt List Shm Snap_api
