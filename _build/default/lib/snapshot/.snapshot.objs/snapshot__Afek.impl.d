lib/snapshot/afek.ml: Array Fmt List Shm Snap_api
