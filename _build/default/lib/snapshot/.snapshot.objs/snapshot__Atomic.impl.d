lib/snapshot/atomic.ml: Shm Snap_api
