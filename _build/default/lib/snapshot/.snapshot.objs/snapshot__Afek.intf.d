lib/snapshot/afek.mli: Shm Snap_api
