lib/snapshot/atomic.mli: Snap_api
