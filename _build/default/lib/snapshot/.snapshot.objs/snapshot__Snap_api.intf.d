lib/snapshot/snap_api.mli: Shm
