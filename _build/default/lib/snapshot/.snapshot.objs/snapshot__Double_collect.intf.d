lib/snapshot/double_collect.mli: Snap_api
