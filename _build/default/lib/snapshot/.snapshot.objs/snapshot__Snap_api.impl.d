lib/snapshot/snap_api.ml: Shm
