lib/snapshot/double_collect.ml: Array Fmt Int64 List Shm Snap_api
