bin/sa_run.ml: Agreement Arg Cmd Cmdliner Fmt List Shm Spec String Term
