bin/sa_attack.ml: Agreement Arg Clones Cmd Cmdliner Fmt List Lowerbound Spec Term Theorem2
