bin/sa_attack.mli:
