bin/sa_table.mli:
