bin/sa_table.ml: Agreement Arg Cmd Cmdliner Fmt Shm Term
