bin/sa_run.mli:
