(* sa-table: print the paper's Figure 1 bounds table for concrete
   parameters, next to the registers our implementations actually use.

   Example:  sa_table -n 8 *)

open Cmdliner

let measure_repeated p =
  let n = p.Agreement.Params.n in
  let impl =
    if Agreement.Params.r_oneshot p <= n then Agreement.Instances.Atomic
    else Agreement.Instances.Sw_based
  in
  let result =
    Agreement.Runner.run_repeated ~impl ~rounds:2
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:500 n)
      ~max_steps:2_000_000 p
  in
  Agreement.Runner.registers_used result

let measure_anonymous p =
  let n = p.Agreement.Params.n in
  let result =
    Agreement.Runner.run_anonymous ~rounds:2
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:500 n)
      ~max_steps:4_000_000 p
  in
  Agreement.Runner.registers_used result

let print_table n =
  Fmt.pr "Figure 1 for n = %d (registers: paper bound vs measured)@." n;
  Fmt.pr "%-8s %-22s %-22s %-10s %-10s@." "(m,k)" "non-anon rep. [lo,up]"
    "anon rep. [lo,up]" "meas.rep" "meas.anon";
  for k = 1 to n - 1 do
    for m = 1 to k do
      let p = Agreement.Params.make ~n ~m ~k in
      let lo = Agreement.Params.registers_lower p in
      let up = Agreement.Params.registers_upper p in
      let alo = Agreement.Params.anon_lower_bound p in
      let aup = Agreement.Params.r_anonymous p + 1 in
      let meas = measure_repeated p in
      let ameas = measure_anonymous p in
      Fmt.pr "%-8s [%d, %d]%-15s [%.1f, %d]%-12s %-10d %-10d@."
        (Fmt.str "(%d,%d)" m k) lo up "" alo aup "" meas ameas
    done
  done

let cmd =
  let n = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Number of processes.") in
  Cmd.v
    (Cmd.info "sa_table" ~doc:"Print the Figure 1 bounds table with measurements")
    Term.(const print_table $ n)

let () = exit (Cmd.eval cmd)
