(* sa-attack: run the paper's lower-bound constructions from the
   command line.

   Examples:
     sa_attack theorem2 -n 5 -m 1 -k 2 --registers 3
     sa_attack theorem2 -n 5 -m 1 -k 2            (defaults to lower-1)
     sa_attack clones -k 1 --registers 3 --slots 8 *)

open Cmdliner
open Lowerbound

let theorem2 n m k registers icap =
  let p = Agreement.Params.make ~n ~m ~k in
  let registers =
    match registers with Some r -> r | None -> Agreement.Params.registers_lower p - 1
  in
  Fmt.pr "Theorem 2 construction: %s with %d registers (lower bound %d, algorithm uses %d)@."
    (Agreement.Params.to_string p)
    registers
    (Agreement.Params.registers_lower p)
    (Agreement.Params.registers_upper p);
  let outcome =
    Theorem2.attack ~params:p ~registers
      ~make_config:(fun ~registers -> Agreement.Instances.repeated ~r:registers p)
      ~icap ()
  in
  Fmt.pr "%a@." Theorem2.pp_outcome outcome;
  match outcome with
  | Theorem2.Violation { config; groups; _ } ->
    groups
    |> List.iter (fun g ->
           Fmt.pr "  group %d: Q={%a} P={%a} A={%a}@." g.Theorem2.index
             Fmt.(list ~sep:comma int)
             g.Theorem2.final_q
             Fmt.(list ~sep:comma int)
             g.Theorem2.pset
             Fmt.(list ~sep:comma int)
             g.Theorem2.aset);
    (match Spec.Properties.check_safety ~k config with
    | Error e -> Fmt.pr "checker: %s@." e
    | Ok () -> Fmt.pr "checker: found nothing (unexpected)@.");
    0
  | Theorem2.Out_of_processes _ -> 1
  | Theorem2.Gamma_failed _ -> 2

let clones k registers slots =
  let c = k + 1 in
  let slots =
    match slots with
    | Some s -> s
    | None -> c * (1 + (((registers * registers) - registers) / 2))
  in
  let p = Agreement.Params.make ~n:slots ~m:1 ~k in
  Fmt.pr
    "Section 5 clone construction: k=%d, %d registers, %d process slots (theorem \
     threshold %d)@."
    k registers slots
    (c * (1 + (((registers * registers) - registers) / 2)));
  let outcome =
    Clones.attack ~params:p ~registers ~slots
      ~make_config:(fun ~registers ~slots ->
        Agreement.Instances.anonymous_oneshot ~r:registers ~slots p)
      ()
  in
  Fmt.pr "%a@." Clones.pp_outcome outcome;
  match outcome with Clones.Violation _ -> 0 | _ -> 1

let theorem2_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Processes.") in
  let m = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Obstruction bound.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Agreement bound.") in
  let registers =
    Arg.(value & opt (some int) None & info [ "registers"; "r" ] ~doc:"Register budget.")
  in
  let icap = Arg.(value & opt int 4 & info [ "icap" ] ~doc:"Ordinary-instance cap.") in
  Cmd.v
    (Cmd.info "theorem2" ~doc:"Run the Figure 2 adversary against Figure 4")
    Term.(const theorem2 $ n $ m $ k $ registers $ icap)

let clones_cmd =
  let k = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Agreement bound.") in
  let registers = Arg.(value & opt int 3 & info [ "registers"; "r" ] ~doc:"Registers.") in
  let slots =
    Arg.(value & opt (some int) None & info [ "slots" ] ~doc:"Process slots.")
  in
  Cmd.v
    (Cmd.info "clones" ~doc:"Run the anonymous clone construction")
    Term.(const clones $ k $ registers $ slots)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "sa_attack" ~doc:"Executable lower bounds of the paper")
          [ theorem2_cmd; clones_cmd ]))
