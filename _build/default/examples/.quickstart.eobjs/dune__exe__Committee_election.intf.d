examples/committee_election.mli:
