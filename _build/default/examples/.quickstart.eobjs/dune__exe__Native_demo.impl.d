examples/native_demo.ml: Agreement Array Fmt List Native Shm Spec Unix
