examples/native_demo.mli:
