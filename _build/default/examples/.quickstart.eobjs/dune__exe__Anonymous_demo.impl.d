examples/anonymous_demo.ml: Agreement Fmt Instances List Lowerbound Params Runner Shm Spec
