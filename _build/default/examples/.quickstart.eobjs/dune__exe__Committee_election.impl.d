examples/committee_election.ml: Agreement Array Fmt Fun Instances List Params Printf Runner Shm Spec
