examples/custom_algorithm.ml: Array Config Exec Fmt Hashtbl List Option Program Schedule Shm Spec String Value
