examples/quickstart.mli:
