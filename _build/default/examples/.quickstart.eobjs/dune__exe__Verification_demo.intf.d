examples/verification_demo.mli:
