examples/quickstart.ml: Agreement Array Fmt List Shm Spec
