examples/adversary_demo.ml: Agreement Fmt Instances List Lowerbound Params Spec Theorem2
