examples/verification_demo.ml: Agreement Array Dump Fmt Instances List Params Shm Spec
