examples/universal_log.ml: Agreement Fmt Ledger List Rsm Shm Spec Universal
