examples/universal_log.mli:
