examples/anonymous_demo.mli:
