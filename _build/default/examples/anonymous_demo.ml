(* Anonymous set agreement (Figure 5) and the Section 5 lower bound.

   Part 1 runs the anonymous repeated algorithm — identical program text
   for every process, no identifiers anywhere — over the honest
   non-blocking anonymous snapshot, including the starvation scenario
   register H exists for: a laggard that never wins the snapshot still
   finishes by reading H.

   Part 2 runs the clone-based lower-bound construction against a
   register-starved anonymous one-shot instance and shows the process
   count matching the ⌈(k+1)/m⌉(m + (r²−r)/2) threshold of Theorem 10.

   Run with:  dune exec examples/anonymous_demo.exe *)

open Agreement

let () =
  (* Part 1: Figure 5 over the non-blocking anonymous snapshot. *)
  let p = Params.make ~n:4 ~m:2 ~k:2 in
  Fmt.pr "anonymous repeated %s: r = (m+1)(n-k)+m^2 = %d components + register H@."
    (Params.to_string p) (Params.r_anonymous p);
  let result =
    Runner.run_anonymous ~anonymous_collect:true ~rounds:3
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:2500 4)
      ~max_steps:3_000_000 p
  in
  Spec.Properties.by_instance result.Shm.Exec.config
  |> List.iter (fun (inst, _, outs) ->
         Fmt.pr "  instance %d: outputs {%a}@." inst
           Fmt.(list ~sep:comma Shm.Value.pp)
           (Spec.Properties.distinct_values outs));
  (match Spec.Properties.check_safety ~k:2 result.Shm.Exec.config with
  | Ok () -> Fmt.pr "  safety: OK@."
  | Error e -> Fmt.pr "  safety VIOLATED: %s@." e);

  (* Part 2: the clone construction of Section 5. *)
  Fmt.pr "@.anonymous lower bound: gluing solo runs with clones@.";
  let starved_r = 3 in
  let k = 1 in
  let c = k + 1 in
  let slots = c * (1 + ((starved_r * starved_r) - starved_r) / 2) in
  Fmt.pr "  starved one-shot: r=%d, k=%d -> theorem needs n >= %d processes@." starved_r
    k slots;
  let p = Params.make ~n:slots ~m:1 ~k in
  let outcome =
    Lowerbound.Clones.attack ~params:p ~registers:starved_r ~slots
      ~make_config:(fun ~registers ~slots ->
        Instances.anonymous_oneshot ~r:registers ~slots p)
      ()
  in
  Fmt.pr "  %a@." Lowerbound.Clones.pp_outcome outcome;
  match outcome with
  | Lowerbound.Clones.Violation { config; _ } ->
    (match Spec.Properties.check_safety ~k config with
    | Error e -> Fmt.pr "  checker: %s@." e
    | Ok () -> Fmt.pr "  checker found nothing?! (bug)@.")
  | _ -> ()
