(* The Theorem 2 lower bound, live.

   We run the repeated k-set agreement algorithm twice: once with one
   register fewer than the paper's n+m−k lower bound — the Figure 2
   adversary then constructs an execution in which a single instance
   outputs k+1 different values — and once with the correct register
   count, against which the same adversary runs out of processes exactly
   as the proof's counting argument predicts.

   Run with:  dune exec examples/adversary_demo.exe *)

open Agreement
open Lowerbound

let attack ~label p ~registers =
  Fmt.pr "@.== %s: %s with %d registers (lower bound: %d) ==@." label
    (Params.to_string p) registers
    (Params.registers_lower p);
  let outcome =
    Theorem2.attack ~params:p ~registers
      ~make_config:(fun ~registers -> Instances.repeated ~r:registers p)
      ~icap:4 ()
  in
  Fmt.pr "%a@." Theorem2.pp_outcome outcome;
  match outcome with
  | Theorem2.Violation { config; groups; instance; _ } ->
    Fmt.pr "groups (Qj / Pj / Aj):@.";
    groups
    |> List.iter (fun g ->
           Fmt.pr "  j=%d  Q={%a}  P={%a}  A={%a}@." g.Theorem2.index
             Fmt.(list ~sep:comma int)
             g.Theorem2.final_q
             Fmt.(list ~sep:comma int)
             g.Theorem2.pset
             Fmt.(list ~sep:comma int)
             g.Theorem2.aset);
    (* Independent certification by the property checker. *)
    (match Spec.Properties.check_safety ~k:p.Params.k config with
    | Error e -> Fmt.pr "checker: %s@." e
    | Ok () -> Fmt.pr "checker found nothing?! (bug)@.");
    Fmt.pr "validity errors: %d (must be 0: the execution is legal)@."
      (List.length (Spec.Properties.validity_errors config));
    ignore instance
  | Theorem2.Out_of_processes _ | Theorem2.Gamma_failed _ -> ()

let () =
  let p = Params.make ~n:5 ~m:1 ~k:2 in
  (* n+m−k = 4: three registers are provably not enough. *)
  attack ~label:"starved" p ~registers:(Params.registers_lower p - 1);
  (* the algorithm's own budget resists *)
  attack ~label:"correct" p ~registers:(Params.r_oneshot p)
