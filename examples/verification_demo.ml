(* Tour of the verification toolkit: exhaustive model checking, trace
   invariants, linearizability checking, and space-time diagrams —
   everything the test suite uses to trust the reproduction, driven by
   hand.

   Run with:  dune exec examples/verification_demo.exe *)

open Agreement

let () =
  (* 1. Exhaustive model checking: every schedule prefix of length 10
     for 2-process consensus over r = 3 components, each completed
     deterministically, must satisfy Validity and 1-Agreement. *)
  let p = Params.make ~n:2 ~m:1 ~k:1 in
  let config = Instances.oneshot p in
  let inputs = Shm.Exec.oneshot_inputs [| Shm.Value.int 1; Shm.Value.int 2 |] in
  Fmt.pr "model checking 2-process consensus (depth 10)...@.";
  (match
     Spec.Modelcheck.exhaustive ~depth:10 ~inputs
       ~check:(Spec.Properties.check_safety ~k:1)
       config
   with
  | Spec.Modelcheck.Ok_bounded s ->
    Fmt.pr "  OK: %d schedule prefixes, %d completions checked@."
      s.Spec.Modelcheck.explored s.Spec.Modelcheck.leaves
  | Spec.Modelcheck.Counterexample _ as c ->
    Fmt.pr "  %a@." Spec.Modelcheck.pp_outcome c);

  (* The same checker convicts a broken instance (1 register): *)
  let broken = Instances.oneshot ~r:1 p in
  Fmt.pr "model checking the same consensus with ONE register...@.";
  (match
     Spec.Modelcheck.exhaustive ~depth:10 ~inputs
       ~check:(Spec.Properties.check_safety ~k:1)
       broken
   with
  | Spec.Modelcheck.Ok_bounded _ -> Fmt.pr "  unexpectedly fine?!@."
  | Spec.Modelcheck.Counterexample { schedule; error; _ } ->
    Fmt.pr "  counterexample schedule %a@.  -> %s@."
      Fmt.(Dump.list int)
      schedule error);

  (* 2. Trace invariants: Lemma 3 on a recorded random run. *)
  let p5 = Params.make ~n:5 ~m:2 ~k:3 in
  let config = Instances.oneshot p5 in
  let inputs5 = Shm.Exec.oneshot_inputs (Array.init 5 (fun i -> Shm.Value.int i)) in
  let res =
    Shm.Exec.run ~record:true ~sched:(Shm.Schedule.random ~seed:3 5) ~inputs:inputs5
      ~max_steps:30_000 config
  in
  let violations =
    Spec.Invariants.check_lemma3 ~registers:(Params.r_oneshot p5) res.Shm.Exec.trace
  in
  Fmt.pr "Lemma 3 invariant on a random run: %d violations (trace of %d events)@."
    (List.length violations) (List.length res.Shm.Exec.trace);

  (* 3. A space-time diagram of a short consensus run. *)
  let config = Instances.oneshot p in
  let res =
    Shm.Exec.run ~record:true
      ~sched:(Shm.Schedule.alternating ~burst:2 [ [ 0 ]; [ 1 ] ])
      ~inputs ~max_steps:60 config
  in
  Fmt.pr "@.space-time diagram (alternating bursts):@.";
  Fmt.pr "@[<v>%a@]@." (fun ppf -> Shm.Diagram.pp ~n:2 ppf) res.Shm.Exec.trace;

  (* 4. Linearizability: a tiny snapshot history, checked by hand. *)
  let open Spec.Linearize in
  let h =
    [
      { pid = 0; op = Update { i = 0; v = Shm.Value.int 7 }; start = 0; finish = 2 };
      { pid = 1; op = Scan { view = [| Shm.Value.int 7; Shm.Value.bot |] }; start = 3; finish = 5 };
    ]
  in
  Fmt.pr "linearizability of a 2-op snapshot history: %b@." (check ~components:2 h);
  let torn =
    [
      { pid = 0; op = Update { i = 0; v = Shm.Value.int 7 }; start = 0; finish = 2 };
      { pid = 1; op = Scan { view = [| Shm.Value.bot; Shm.Value.bot |] }; start = 3; finish = 5 };
    ]
  in
  Fmt.pr "and of the history with a stale scan: %b (correctly rejected)@."
    (check ~components:2 torn)
