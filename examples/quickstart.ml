(* Quickstart: solve one instance of m-obstruction-free k-set agreement
   among n processes and inspect the outcome.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 6 processes, at most 3 different decisions, progress guaranteed
     whenever at most 2 processes run concurrently. *)
  let params = Agreement.Params.make ~n:6 ~m:2 ~k:3 in
  Fmt.pr "k-set agreement %s: snapshot components r = n+2m-k = %d@."
    (Agreement.Params.to_string params)
    (Agreement.Params.r_oneshot params);

  (* Each process proposes 10*(pid+1); the scheduler interleaves all six
     processes at random, then lets two of them finish. *)
  let inputs = Array.init 6 (fun pid -> Shm.Value.int (10 * (pid + 1))) in
  let sched = Shm.Schedule.m_bounded ~seed:2024 ~m:2 ~prefix:100 6 in
  let result = Agreement.Runner.run_oneshot ~sched ~inputs params in

  (* Outputs, instance by instance. *)
  Spec.Properties.by_instance result.Shm.Exec.config
  |> List.iter (fun (inst, ins, outs) ->
         Fmt.pr "instance %d: inputs {%a} -> outputs {%a}@." inst
           Fmt.(list ~sep:comma Shm.Value.pp)
           (Spec.Properties.distinct_values ins)
           Fmt.(list ~sep:comma Shm.Value.pp)
           (Spec.Properties.distinct_values outs));

  (* The checker confirms Validity and k-Agreement. *)
  (match Spec.Properties.check_safety ~k:3 result.Shm.Exec.config with
  | Ok () -> Fmt.pr "safety: OK (validity + 3-agreement)@."
  | Error e -> Fmt.pr "safety VIOLATED: %s@." e);
  Fmt.pr "steps: %d, registers written: %d@." result.Shm.Exec.steps
    (Agreement.Runner.registers_used result)
