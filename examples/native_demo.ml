(* Set agreement on real multicore: the Figure 3 algorithm executed by
   OCaml 5 domains over atomics — no simulator anywhere.  Safety comes
   from the algorithm (any hardware interleaving is one the paper's
   model allows); progress comes from randomized exponential backoff,
   exactly the contention-management story of the paper's introduction.

   Run with:  dune exec examples/native_demo.exe *)

let () =
  let params = Agreement.Params.make ~n:4 ~m:2 ~k:2 in
  Fmt.pr "native 2-set agreement: 4 domains, %d atomic registers@."
    (Agreement.Params.r_oneshot params);
  for trial = 1 to 5 do
    let inputs = Array.init 4 (fun pid -> Shm.Value.int ((10 * trial) + pid)) in
    let t0 = Unix.gettimeofday () in
    let _, decisions = Native.Native_agreement.run_instance ~seed:trial ~params inputs in
    let dt = (Unix.gettimeofday () -. t0) *. 1e6 in
    let distinct =
      Spec.Properties.distinct_values (Array.to_list decisions)
    in
    Fmt.pr "trial %d: inputs {%a} -> decisions {%a} (%d distinct <= k=2) in %.0f us@."
      trial
      Fmt.(list ~sep:comma Shm.Value.pp)
      (Array.to_list inputs |> Spec.Properties.distinct_values)
      Fmt.(list ~sep:comma Shm.Value.pp)
      (Array.to_list decisions)
      (List.length distinct) dt;
    assert (List.length distinct <= 2)
  done;
  Fmt.pr "all trials safe.@."
