(* Extending the substrate: write your own shared-memory algorithm on
   the Program monad and verify it with the toolkit.

   The example object is the classic Moir–Anderson splitter: processes
   enter; each leaves with [stop], [left] or [right]; the guarantees
   are (a) at most one process stops, (b) not every entering process
   goes left, (c) not every entering process goes right, and (d) a
   process running alone stops.  Two registers suffice: a door (bool)
   and a name plate (last entrant).

       door := open; plate := ⊥
       enter(id):
         plate := id
         if door = closed then return right
         door := closed
         if plate = id then return stop else return left

   The demo model-checks the splitter exhaustively for 2 and 3
   processes — every schedule, every outcome checked against the four
   properties — and prints the outcome profile under random schedules.

   Run with:  dune exec examples/custom_algorithm.exe *)

open Shm

let plate = 0
let door = 1

(* The splitter as a Program: input is the process's name; output is
   "stop" | "left" | "right". *)
let splitter_program =
  Program.await (fun id ->
      Program.write plate id (fun () ->
          Program.read door (fun d ->
              if Value.equal d (Value.str "closed") then
                Program.yield (Value.str "right") Program.stop
              else
                Program.write door (Value.str "closed") (fun () ->
                    Program.read plate (fun p ->
                        if Value.equal p id then
                          Program.yield (Value.str "stop") Program.stop
                        else Program.yield (Value.str "left") Program.stop)))))

let outcomes config =
  Config.outputs config
  |> List.map (fun (pid, _, v) ->
         (pid, match Value.view v with Value.Str s -> s | _ -> Value.to_string v))

(* The splitter specification, as a checker over final configurations. *)
let check_splitter ~entered config =
  let outs = outcomes config in
  let count s = List.length (List.filter (fun (_, o) -> o = s) outs) in
  if count "stop" > 1 then Error "two processes stopped"
  else if entered > 0 && count "left" = entered then Error "everyone went left"
  else if entered > 0 && count "right" = entered then Error "everyone went right"
  else Ok ()

let () =
  (* exhaustive verification for n = 2 and n = 3 *)
  [ 2; 3 ]
  |> List.iter (fun n ->
         let procs = Array.make n splitter_program in
         let config = Config.create ~registers:2 ~procs () in
         let inputs ~pid ~instance =
           if instance = 1 then Some (Value.int (pid + 1)) else None
         in
         match
           Spec.Modelcheck.exhaustive ~depth:(4 * n) ~inputs
             ~check:(check_splitter ~entered:n) config
         with
         | Spec.Modelcheck.Ok_bounded s ->
           Fmt.pr "splitter n=%d: exhaustively verified (%d prefixes, %d completions)@."
             n s.Spec.Modelcheck.explored s.Spec.Modelcheck.leaves
         | Spec.Modelcheck.Counterexample _ as c ->
           Fmt.pr "splitter n=%d: %a@." n Spec.Modelcheck.pp_outcome c);

  (* a process running alone stops *)
  let config = Config.create ~registers:2 ~procs:[| splitter_program |] () in
  let inputs ~pid:_ ~instance = if instance = 1 then Some (Value.int 1) else None in
  let res = Exec.run ~sched:(Schedule.solo 0) ~inputs ~max_steps:100 config in
  (match outcomes res.Exec.config with
  | [ (0, "stop") ] -> Fmt.pr "solo run stops: OK@."
  | other ->
    Fmt.pr "solo run went wrong: %a@."
      Fmt.(list (pair int string))
      other);

  (* outcome profile under random contention *)
  let profile = Hashtbl.create 7 in
  for seed = 0 to 199 do
    let procs = Array.make 3 splitter_program in
    let config = Config.create ~registers:2 ~procs () in
    let inputs ~pid ~instance = if instance = 1 then Some (Value.int (pid + 1)) else None in
    let res = Exec.run ~sched:(Schedule.random ~seed 3) ~inputs ~max_steps:1_000 config in
    let key =
      outcomes res.Exec.config |> List.map snd |> List.sort compare |> String.concat ","
    in
    Hashtbl.replace profile key (1 + Option.value ~default:0 (Hashtbl.find_opt profile key))
  done;
  Fmt.pr "outcome profile over 200 random 3-process runs:@.";
  Hashtbl.iter (fun k c -> Fmt.pr "  {%s}: %d@." k c) profile
