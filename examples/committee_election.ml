(* Committee election with one-shot k-set agreement.

   n nodes must elect a small committee: every node proposes itself and
   learns one committee member; k-Agreement caps the committee at k
   members, Validity makes every member a real candidate, and
   m-obstruction-freedom guarantees election completes whenever
   contention drops to m nodes.  This is the classic use of set
   agreement as a weakening of leader election (k = 1 would elect a
   unique leader but costs consensus).

   The demo elects committees under increasingly hostile schedules and
   shows the committee never exceeds k, while its size varies with how
   contended the election was.

   Run with:  dune exec examples/committee_election.exe *)

open Agreement

let n = 8
let m = 2
let k = 3

let candidate pid = Shm.Value.str (Printf.sprintf "node-%d" pid)

let elect ~sched_name sched =
  let params = Params.make ~n ~m ~k in
  let inputs = Array.init n candidate in
  let result =
    Runner.run_oneshot ~impl:(Instances.space_optimal_impl params) ~sched ~inputs
      ~max_steps:1_000_000 params
  in
  let committee =
    Spec.Properties.distinct_values (Runner.outputs_of_instance result ~instance:1)
  in
  Fmt.pr "%-28s committee {%a} (size %d <= k=%d), %d steps@." sched_name
    Fmt.(list ~sep:comma Shm.Value.pp)
    committee (List.length committee) k result.Shm.Exec.steps;
  (match Spec.Properties.check_safety ~k result.Shm.Exec.config with
  | Ok () -> ()
  | Error e -> Fmt.pr "  ELECTION BROKEN: %s@." e);
  committee

let () =
  let params = Params.make ~n ~m ~k in
  Fmt.pr "electing <=%d of %d nodes using %d registers (paper bound min(n+2m-k,n)=%d)@."
    k n
    (Params.registers_upper params)
    (Params.registers_upper params);
  (* calm: nodes run mostly alone -> tiny committees *)
  let c1 = elect ~sched_name:"calm (solo bursts):" (Shm.Schedule.quantum_round_robin ~quantum:500 n) in
  (* contended start, then m nodes remain: m-obstruction-freedom kicks in *)
  let c2 =
    elect ~sched_name:"contended then settles:"
      (Shm.Schedule.m_bounded ~seed:42 ~m ~prefix:300 n)
  in
  let c3 =
    elect ~sched_name:"two camps (alternating):"
      (Shm.Schedule.alternating ~burst:2 [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ])
  in
  (* nodes crash mid-election *)
  let c4 =
    elect ~sched_name:"crashy:"
      (Shm.Schedule.with_crashes
         ~crashes:[ (0, 20); (5, 35) ]
         (Shm.Schedule.quantum_round_robin ~quantum:300 n))
  in
  (* racing bursts: contention splits the committee (still <= k) *)
  let c5 =
    elect ~sched_name:"racing bursts:"
      (Shm.Schedule.bursty_random ~seed:71 (List.init n Fun.id))
  in
  let sizes = List.map List.length [ c1; c2; c3; c4; c5 ] in
  Fmt.pr "all five elections valid; committee sizes %a@."
    Fmt.(list ~sep:comma int)
    sizes
