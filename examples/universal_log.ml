(* A replicated state machine and a k-branch ledger, both built with
   the Universal library on top of repeated set agreement — the
   application the paper's introduction motivates (Herlihy's universal
   construction [8]).

   Part 1: consensus underneath (k = 1) — a replicated counter whose
   replicas provably agree, forever, in min(n+1, n) = n registers.

   Part 2: k = 2 underneath — a 2-branch ledger where slots may commit
   two alternative commands; we print which replica follows which
   branch.

   Run with:  dune exec examples/universal_log.exe *)

open Universal

let counter =
  {
    Rsm.init = 0;
    apply =
      (fun s cmd ->
        match Shm.Value.view cmd with
        | Shm.Value.Pair (tag, x)
          when (match Shm.Value.view tag with Shm.Value.Str "add" -> true | _ -> false) ->
          s + Shm.Value.to_int x
        | _ -> s);
  }

let add pid slot = Shm.Value.pair (Shm.Value.str "add") (Shm.Value.int ((10 * slot) + pid))

let () =
  (* Part 1: replicated counter over consensus. *)
  let p = Agreement.Params.make ~n:5 ~m:1 ~k:1 in
  Fmt.pr "replicated counter: n=5 clients, consensus slots, %d registers total@."
    (Agreement.Params.registers_upper p);
  let run = Rsm.replicate p counter ~commands:add ~slots:8 in
  (match Rsm.agreement_log run with
  | Some log ->
    Fmt.pr "agreed log (%d slots): %a@." (List.length log)
      Fmt.(list ~sep:comma Shm.Value.pp)
      log
  | None -> Fmt.pr "replicas diverged?! (bug)@.");
  List.iter
    (fun (r : int Rsm.replica) -> Fmt.pr "  replica %d: state = %d@." r.Rsm.pid r.Rsm.state)
    run.Rsm.replicas;
  Fmt.pr "steps: %d, registers written: %d, quiescent: %b@.@." run.Rsm.steps
    run.Rsm.registers run.Rsm.quiescent;

  (* Part 2: 2-branch ledger under a contention-heavy schedule. *)
  let p2 = Agreement.Params.make ~n:4 ~m:2 ~k:2 in
  Fmt.pr "2-branch ledger: n=4 clients, k=2 slots, %d registers@."
    (Agreement.Params.registers_upper p2);
  let result =
    Agreement.Runner.run_repeated
      ~impl:(Agreement.Instances.space_optimal_impl p2)
      ~rounds:5
      ~sched:(Shm.Schedule.m_bounded ~seed:11 ~m:2 ~prefix:120 4)
      ~input_fn:(fun pid slot -> add pid slot)
      ~max_steps:2_000_000 p2
  in
  let infos = Ledger.slot_infos result.Shm.Exec.config in
  List.iter (fun i -> Fmt.pr "  %a@." Ledger.pp_slot i) infos;
  Fmt.pr "max branching: %d (bound k=2)@." (Ledger.max_branching infos);
  match Spec.Properties.check_safety ~k:2 result.Shm.Exec.config with
  | Ok () -> Fmt.pr "ledger integrity: OK@."
  | Error e -> Fmt.pr "ledger integrity VIOLATED: %s@." e
