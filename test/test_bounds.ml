(* Tests for parameter validation, the Figure 1 closed forms, and the
   View helper predicates shared by the algorithms. *)

open Helpers
open Agreement

let params_validation () =
  Alcotest.(check bool) "valid" true
    (match Params.validate { Params.n = 5; m = 2; k = 3 } with Ok () -> true | Error _ -> false);
  let bad t = match Params.validate t with Ok () -> false | Error _ -> true in
  Alcotest.(check bool) "m > k rejected (unsolvable)" true
    (bad { Params.n = 5; m = 3; k = 2 });
  Alcotest.(check bool) "k >= n rejected (trivial)" true
    (bad { Params.n = 3; m = 1; k = 3 });
  Alcotest.(check bool) "m < 1 rejected" true (bad { Params.n = 3; m = 0; k = 1 });
  Alcotest.(check bool) "n <= 1 rejected" true (bad { Params.n = 1; m = 1; k = 1 })

let figure1_formulas () =
  let p = Params.make ~n:10 ~m:2 ~k:4 in
  Alcotest.(check int) "r oneshot = n+2m-k" 10 (Params.r_oneshot p);
  Alcotest.(check int) "ell = n+m-k" 8 (Params.ell p);
  Alcotest.(check int) "lower = n+m-k" 8 (Params.registers_lower p);
  Alcotest.(check int) "upper = min(n+2m-k, n)" 10 (Params.registers_upper p);
  Alcotest.(check int) "anon r = (m+1)(n-k)+m^2" 22 (Params.r_anonymous p);
  let p2 = Params.make ~n:4 ~m:2 ~k:2 in
  Alcotest.(check int) "upper capped at n" 4 (Params.registers_upper p2);
  Alcotest.(check int) "r oneshot exceeds n here" 6 (Params.r_oneshot p2)

let anon_lower_formula () =
  (* Theorem 10: > sqrt(m(n/k - 2)) *)
  let p = Params.make ~n:100 ~m:1 ~k:1 in
  Alcotest.(check bool) "~sqrt(98)" true
    (abs_float (Params.anon_lower_bound p -. sqrt 98.) < 1e-9);
  let p2 = Params.make ~n:100 ~m:4 ~k:5 in
  Alcotest.(check bool) "sqrt(4*18)" true
    (abs_float (Params.anon_lower_bound p2 -. sqrt 72.) < 1e-9)

let consensus_exact_n () =
  (* §1: obstruction-free repeated consensus requires exactly n registers *)
  for n = 2 to 20 do
    let lower, upper = Bounds.Formulas.repeated_consensus_exact ~n in
    Alcotest.(check int) "lower = n" n lower;
    Alcotest.(check int) "upper = n" n upper
  done

let bounds_rows_consistent () =
  (* on every valid parameter triple, lower <= upper in each row *)
  for n = 2 to 12 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        Bounds.Formulas.all
        |> List.iter (fun row ->
               let lo = row.Bounds.Formulas.lower p
               and hi = row.Bounds.Formulas.upper p in
               if lo > hi +. 1e-9 then
                 Alcotest.failf "%s at %s: lower %.2f > upper %.2f"
                   row.Bounds.Formulas.label (Params.to_string p) lo hi)
      done
    done
  done

let dfgr_comparison_row () =
  let b, ours = Bounds.Formulas.dfgr13_comparison ~n:10 ~k:3 in
  Alcotest.(check int) "baseline 2(n-k)" 14 b;
  Alcotest.(check int) "ours n-k+2" 9 ours

(* ---- View helpers ---- *)

let view_distinct_count () =
  let v = [| vi 1; vi 2; vi 1; Shm.Value.bot; vi 2 |] in
  Alcotest.(check int) "distinct" 3 (Agreement.View.distinct_count v);
  Alcotest.(check int) "empty" 0 (Agreement.View.distinct_count [||])

let view_min_duplicate () =
  let v = [| vi 5; vi 2; vi 2; vi 5 |] in
  Alcotest.(check (option int)) "min dup" (Some 0) (Agreement.View.min_duplicate_index v);
  let v2 = [| vi 1; vi 2; vi 3 |] in
  Alcotest.(check (option int)) "no dup" None (Agreement.View.min_duplicate_index v2);
  let eligible x = not (Shm.Value.equal x (vi 5)) in
  Alcotest.(check (option int)) "eligible filter" (Some 1)
    (Agreement.View.min_duplicate_index ~eligible v)

let view_most_frequent () =
  let v = [| vi 1; vi 2; vi 2; vi 1; vi 2 |] in
  (match Agreement.View.most_frequent ~project:Fun.id v with
  | Some x -> check_value "2 wins" (vi 2) x
  | None -> Alcotest.fail "expected a value");
  let tie = [| vi 1; vi 2; vi 2; vi 1 |] in
  match Agreement.View.most_frequent ~project:Fun.id tie with
  | Some x -> check_value "tie -> first seen" (vi 1) x
  | None -> Alcotest.fail "expected a value"

let view_counts () =
  let v = [| vi 1; Shm.Value.bot; vi 1 |] in
  Alcotest.(check int) "count" 2 (Agreement.View.count (Shm.Value.equal (vi 1)) v);
  Alcotest.(check bool) "contains bot" true (Agreement.View.contains_bot v);
  Alcotest.(check int) "filter keeps multiplicity" 2
    (List.length (Agreement.View.filter (Shm.Value.equal (vi 1)) v))

let schedule_first_runnable () =
  let runnable pid = pid mod 2 = 1 in
  Alcotest.(check (option int)) "first odd" (Some 1)
    (Shm.Schedule.first_runnable ~runnable [ 0; 1; 2; 3 ]);
  Alcotest.(check (option int)) "none" None
    (Shm.Schedule.first_runnable ~runnable [ 0; 2 ])

let suite =
  [
    test "parameter validation" params_validation;
    test "figure 1 register formulas" figure1_formulas;
    test "anonymous lower-bound formula" anon_lower_formula;
    test "repeated consensus needs exactly n registers" consensus_exact_n;
    test "figure 1 rows: lower <= upper everywhere" bounds_rows_consistent;
    test "dfgr13 comparison row" dfgr_comparison_row;
    test "view distinct count" view_distinct_count;
    test "view min duplicate index" view_min_duplicate;
    test "view most frequent" view_most_frequent;
    test "view counts and bot detection" view_counts;
    test "schedule first_runnable helper" schedule_first_runnable;
  ]
