(* Tests for exploration engine v2: DPOR vs naive agreement, state-hash
   collision freedom, counterexample shrinking, parallel-domain
   agreement, and the stress harness's replayable schedules. *)

open Helpers
open Agreement

let inputs_for n = Shm.Exec.oneshot_inputs (Array.init n (fun pid -> vi (pid + 1)))

let check_safety ~k config = Spec.Properties.check_safety ~k config

let is_ok = function Spec.Modelcheck.Ok_bounded _ -> true | _ -> false

let explored = function
  | Spec.Modelcheck.Ok_bounded s -> s.Spec.Modelcheck.explored
  | Spec.Modelcheck.Counterexample { stats; _ } -> stats.Spec.Modelcheck.explored

let run_engine ~engine ~depth ~n ~k ~r =
  let p = Params.make ~n ~m:1 ~k in
  Spec.Modelcheck.run ~engine ~depth ~inputs:(inputs_for n) ~check:(check_safety ~k)
    (Instances.oneshot ~r p)

(* Replay oracle over a fresh instance: model-checker style (tolerant
   replay + deterministic completion + safety check). *)
let shrink_oracle ~n ~k ~r =
  let p = Params.make ~n ~m:1 ~k in
  fun schedule ->
    Spec.Counterex.replay ~completion_steps:50_000 ~inputs:(inputs_for n)
      ~check:(check_safety ~k)
      (Instances.oneshot ~r p)
      schedule

(* ---- DPOR vs naive: verdict agreement and state-count reduction ---- *)

(* Correct and starved one-shot instances, 2 and 3 processes: the two
   engines agree on every verdict, and on fully-explored (Ok) spaces
   DPOR visits at most as many nodes as the naive engine. *)
let dpor_agrees_with_naive () =
  [ (2, 1, 1, 10); (2, 1, 2, 10); (2, 1, 3, 10); (3, 2, 2, 8); (3, 2, 4, 7) ]
  |> List.iter (fun (n, k, r, depth) ->
         let naive = run_engine ~engine:Spec.Modelcheck.Naive ~depth ~n ~k ~r in
         let dpor =
           run_engine
             ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 })
             ~depth ~n ~k ~r
         in
         Alcotest.(check bool)
           (Fmt.str "verdicts agree (n=%d k=%d r=%d)" n k r)
           (is_ok naive) (is_ok dpor);
         if is_ok naive then
           Alcotest.(check bool)
             (Fmt.str "dpor explores no more (n=%d k=%d r=%d)" n k r)
             true
             (explored dpor <= explored naive))

(* On a starved 2-process/2-register config both engines find a
   counterexample, and DPOR's independently re-checks: replaying its
   schedule (plus completion) still violates safety. *)
let dpor_counterexample_recheck () =
  let n = 2 and k = 1 and r = 1 and depth = 10 in
  let naive = run_engine ~engine:Spec.Modelcheck.Naive ~depth ~n ~k ~r in
  let dpor =
    run_engine ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 }) ~depth ~n ~k ~r
  in
  match Spec.Modelcheck.counterex_of naive, Spec.Modelcheck.counterex_of dpor with
  | Some nce, Some ce ->
    let replay = shrink_oracle ~n ~k ~r in
    Alcotest.(check bool) "dpor counterexample re-checks" true
      (replay ce.Spec.Counterex.schedule <> None);
    (* the engines visit the tree in different orders, so the raw first
       counterexamples differ (and greedy shrinking can land them in
       different local minima) — but both shrink to genuine violating
       schedules *)
    List.iter
      (fun c ->
        match Spec.Shrink.minimize ~replay c.Spec.Counterex.schedule with
        | Some { ce = m; _ } ->
          Alcotest.(check bool) "shrunk schedule still violates" true
            (replay m.Spec.Counterex.schedule <> None)
        | None -> Alcotest.fail "shrinker lost a counterexample")
      [ nce; ce ]
  | _ -> Alcotest.fail "expected counterexamples from both engines"

(* The state cache earns its keep: with caching strictly fewer nodes
   than without, same verdict. *)
let cache_reduces_states () =
  let n = 3 and k = 1 and depth = 8 in
  let p = Params.make ~n ~m:1 ~k in
  let r = Params.r_oneshot p in
  let nocache =
    run_engine ~engine:(Spec.Modelcheck.Dpor { cache = false; jobs = 1 }) ~depth ~n ~k ~r
  in
  let cached =
    run_engine ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 }) ~depth ~n ~k ~r
  in
  Alcotest.(check bool) "both ok" true (is_ok nocache && is_ok cached);
  Alcotest.(check bool) "cache strictly reduces" true (explored cached < explored nocache)

(* ---- state hashing ---- *)

(* The collision audit.  Enumerate every state reachable within a depth
   bound (every schedule, no reduction) and certify the incremental key
   partitions the space exactly as the full canonical form does: equal
   keys always mean equal canonical forms (no collision ever merges
   distinct states), and equal canonical forms always mean equal keys
   (incrementality loses no cache hits vs the full digest). *)
let statehash_audit ~n ~depth ~min_states () =
  let p = Params.make ~n ~m:1 ~k:1 in
  let inputs = inputs_for n in
  let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
  let by_key : (Spec.Statehash.key, string) Hashtbl.t = Hashtbl.create 1024 in
  let by_repr : (string, Spec.Statehash.key) Hashtbl.t = Hashtbl.create 1024 in
  let states = ref 0 in
  let rec go config hash d =
    incr states;
    let key = Spec.Statehash.key hash in
    let repr = Spec.Statehash.repr hash config in
    (match Hashtbl.find_opt by_key key with
    | Some repr' ->
      Alcotest.(check string) "equal key implies equal canonical form" repr' repr
    | None -> Hashtbl.add by_key key repr);
    (match Hashtbl.find_opt by_repr repr with
    | Some key' ->
      if not (Spec.Statehash.key_equal key key') then
        Alcotest.failf "equal canonical form, different keys: %a vs %a"
          Spec.Statehash.pp_key key Spec.Statehash.pp_key key'
    | None -> Hashtbl.add by_repr repr key);
    if d < depth then
      List.init n Fun.id
      |> List.filter (fun pid -> Shm.Config.runnable config ~has_input pid)
      |> List.iter (fun pid ->
             let config', ev =
               match Shm.Config.proc config pid with
               | Shm.Program.Await _ ->
                 let inst = Shm.Config.instance config pid + 1 in
                 Shm.Config.invoke config pid (Option.get (inputs ~pid ~instance:inst))
               | Shm.Program.Stop -> assert false
               | Shm.Program.Op _ | Shm.Program.Yield _ -> Shm.Config.step config pid
             in
             go config' (Spec.Statehash.record hash ~before:config config' ev) (d + 1))
  in
  go (Instances.oneshot p) (Spec.Statehash.create ~audit:true (Instances.oneshot p)) 0;
  Alcotest.(check bool) "enumerated a real space" true (!states > min_states)

let statehash_no_collisions = statehash_audit ~n:2 ~depth:10 ~min_states:1000

let statehash_audit_n3 = statehash_audit ~n:3 ~depth:8 ~min_states:5000

(* Commuted independent steps produce the same key: two processes
   writing distinct registers in either order. *)
let statehash_merges_commuted_writes () =
  let program reg =
    Shm.Program.await (fun v ->
        Shm.Program.write reg v (fun () -> Shm.Program.yield v Shm.Program.stop))
  in
  let config =
    Shm.Config.create ~registers:2 ~procs:[| program 0; program 1 |] ()
  in
  let inputs = inputs_for 2 in
  let run schedule =
    List.fold_left
      (fun (config, hash) pid ->
        let config', ev =
          match Shm.Config.proc config pid with
          | Shm.Program.Await _ ->
            let inst = Shm.Config.instance config pid + 1 in
            Shm.Config.invoke config pid (Option.get (inputs ~pid ~instance:inst))
          | _ -> Shm.Config.step config pid
        in
        (config', Spec.Statehash.record hash ~before:config config' ev))
      (config, Spec.Statehash.create ~audit:true config)
      schedule
  in
  let c1, h1 = run [ 0; 1; 0; 1 ] (* invoke 0, invoke 1, write R0, write R1 *)
  and c2, h2 = run [ 1; 0; 1; 0 ] (* same steps, writes commuted *) in
  Alcotest.(check string) "same canonical form" (Spec.Statehash.repr h1 c1)
    (Spec.Statehash.repr h2 c2);
  Alcotest.(check bool) "same incremental key" true
    (Spec.Statehash.key_equal (Spec.Statehash.key h1) (Spec.Statehash.key h2))

(* ---- shrinking ---- *)

(* Shrinking a model-checker counterexample: the result still violates
   and is 1-minimal (removing any single remaining step loses the
   violation).  n=3/k=1/r=3 is one register short of the n+2m−k bound
   and violates only under a genuine interleaving — the empty schedule
   is safe — so 1-minimality is non-trivial here. *)
let shrinker_one_minimal () =
  let n = 3 and k = 1 and r = 3 and depth = 14 in
  let replay = shrink_oracle ~n ~k ~r in
  Alcotest.(check bool) "completion alone is safe at r=3" true (replay [] = None);
  let dpor =
    run_engine ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 }) ~depth ~n ~k ~r
  in
  let ce =
    match Spec.Modelcheck.counterex_of dpor with
    | Some ce -> ce
    | None -> Alcotest.fail "expected a counterexample"
  in
  match Spec.Shrink.minimize ~replay ce.Spec.Counterex.schedule with
  | None -> Alcotest.fail "shrinker lost the violation"
  | Some { ce = shrunk; _ } ->
    let s = shrunk.Spec.Counterex.schedule in
    Alcotest.(check bool) "shrunk no longer than original" true
      (List.length s <= List.length ce.Spec.Counterex.schedule);
    Alcotest.(check bool) "shrunk still violates" true (replay s <> None);
    List.iteri
      (fun i _ ->
        let without = List.filteri (fun j _ -> j <> i) s in
        Alcotest.(check bool)
          (Fmt.str "1-minimal: dropping step %d loses the violation" i)
          true
          (replay without = None))
      s

(* The polymorphic ddmin core on a synthetic oracle: failure iff the
   subset keeps both sentinel elements; the 1-minimal result is exactly
   those two, in their original relative order. *)
let minimize_generic_synthetic () =
  let replay keep =
    if List.mem 3 keep && List.mem 7 keep then Some (List.length keep) else None
  in
  match Spec.Shrink.minimize_generic ~replay (List.init 12 Fun.id) with
  | None -> Alcotest.fail "generic shrinker lost the failure"
  | Some r ->
    Alcotest.(check (list int)) "exact minimum, order preserved" [ 3; 7 ]
      r.Spec.Shrink.schedule;
    Alcotest.(check int) "witness from the final oracle call" 2 r.Spec.Shrink.witness;
    Alcotest.(check int) "removed the other ten" 10 r.Spec.Shrink.g_removed;
    Alcotest.(check bool) "oracle consulted" true (r.Spec.Shrink.g_replays > 0);
  (* an oracle that never fails: nothing to shrink *)
  Alcotest.(check bool) "non-failing start refused" true
    (Spec.Shrink.minimize_generic ~replay:(fun _ -> None) [ 1; 2; 3 ] = None)

(* The Counterex wrapper is the generic core: on the same oracle both
   produce the same schedule, and the generic witness carries the
   (error, config) pair that re-checks. *)
let minimize_generic_agrees_with_wrapper () =
  let n = 3 and k = 1 and r = 3 and depth = 14 in
  let dpor =
    run_engine ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 }) ~depth ~n ~k ~r
  in
  let ce =
    match Spec.Modelcheck.counterex_of dpor with
    | Some ce -> ce
    | None -> Alcotest.fail "expected a counterexample"
  in
  let replay = shrink_oracle ~n ~k ~r in
  match
    ( Spec.Shrink.minimize ~replay ce.Spec.Counterex.schedule,
      Spec.Shrink.minimize_generic ~replay ce.Spec.Counterex.schedule )
  with
  | Some w, Some g ->
    Alcotest.(check (list int)) "same minimized schedule"
      w.Spec.Shrink.ce.Spec.Counterex.schedule g.Spec.Shrink.schedule;
    Alcotest.(check int) "same oracle spend" w.Spec.Shrink.replays g.Spec.Shrink.g_replays;
    let error, _config = g.Spec.Shrink.witness in
    Alcotest.(check string) "same violation" w.Spec.Shrink.ce.Spec.Counterex.error error;
    (* shrink-then-recheck: replaying the generic schedule still fails *)
    Alcotest.(check bool) "generic schedule re-checks" true
      (replay g.Spec.Shrink.schedule <> None)
  | _ -> Alcotest.fail "one of the shrinkers lost the counterexample"

(* At r=1 even the deterministic completion violates — no adversarial
   scheduling needed — and the shrinker discovers exactly that: the
   counterexample shrinks to the empty schedule. *)
let shrinker_reaches_empty () =
  let n = 2 and k = 1 and r = 1 and depth = 10 in
  let dpor =
    run_engine ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 }) ~depth ~n ~k ~r
  in
  let ce =
    match Spec.Modelcheck.counterex_of dpor with
    | Some ce -> ce
    | None -> Alcotest.fail "expected a counterexample"
  in
  let replay = shrink_oracle ~n ~k ~r in
  match Spec.Shrink.minimize ~replay ce.Spec.Counterex.schedule with
  | None -> Alcotest.fail "shrinker lost the violation"
  | Some { ce = shrunk; _ } ->
    Alcotest.(check (list int)) "shrinks to the empty schedule" []
      shrunk.Spec.Counterex.schedule

(* ---- parallel domains ---- *)

(* --jobs 1 and --jobs 4 agree on the outcome, on both a correct and a
   starved instance. *)
let jobs_agree () =
  [ (2, 1, 3, 10, true); (2, 1, 1, 10, false); (3, 1, 1, 7, false) ]
  |> List.iter (fun (n, k, r, depth, expect_ok) ->
         let j1 =
           run_engine ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 }) ~depth ~n
             ~k ~r
         and j4 =
           run_engine ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 4 }) ~depth ~n
             ~k ~r
         in
         Alcotest.(check bool) (Fmt.str "jobs=1 verdict (n=%d r=%d)" n r) expect_ok (is_ok j1);
         Alcotest.(check bool) (Fmt.str "jobs=4 verdict (n=%d r=%d)" n r) expect_ok (is_ok j4))

(* Every combination of memory backend × cache-key flavour × domain
   count reaches the same verdict, on a correct and a starved instance.
   This pins the journaled backend's replay-based stealing and the
   incremental key against the persistent/full-digest reference. *)
let backends_and_key_modes_agree () =
  [ (3, true); (1, false) ]
  |> List.iter (fun (r, expect_ok) ->
         let n = 2 and k = 1 and depth = 10 in
         let p = Params.make ~n ~m:1 ~k in
         [ Shm.Memory.Persistent; Shm.Memory.Journaled ]
         |> List.iter (fun backend ->
                [ `Incremental; `Full ]
                |> List.iter (fun key ->
                       [ 1; 4 ]
                       |> List.iter (fun jobs ->
                              let out =
                                Spec.Modelcheck.run
                                  ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs })
                                  ~depth ~key ~inputs:(inputs_for n)
                                  ~check:(check_safety ~k)
                                  (Instances.oneshot ~r ~backend p)
                              in
                              Alcotest.(check bool)
                                (Fmt.str "verdict (r=%d %s %s jobs=%d)" r
                                   (Shm.Memory.backend_name backend)
                                   (match key with `Incremental -> "inc" | `Full -> "full")
                                   jobs)
                                expect_ok (is_ok out)))))

(* ---- stress: replayable witness schedules ---- *)

(* A Broken verdict now carries the pid schedule; replaying it from a
   fresh configuration reproduces a safety violation, and it shrinks. *)
let stress_schedule_replays_and_shrinks () =
  let n = 5 and k = 2 and r = 2 in
  let p = Params.make ~n ~m:2 ~k in
  let build () = Instances.oneshot ~r p in
  let inputs = Shm.Exec.oneshot_inputs (Array.init n (fun pid -> vi pid)) in
  match Spec.Stress.run ~runs:100 ~k ~n ~build ~inputs () with
  | Spec.Stress.Survived _ -> Alcotest.fail "starved system survived stress"
  | Spec.Stress.Broken { schedule; _ } as verdict ->
    Alcotest.(check bool) "non-empty schedule" true (schedule <> []);
    let replay s = Spec.Counterex.replay ~inputs ~check:(check_safety ~k) (build ()) s in
    Alcotest.(check bool) "witness schedule replays to a violation" true
      (replay schedule <> None);
    let ce = Option.get (Spec.Stress.counterex_of verdict) in
    (match Spec.Shrink.minimize ~replay ce.Spec.Counterex.schedule with
    | None -> Alcotest.fail "shrinker lost the stress violation"
    | Some { ce = shrunk; _ } ->
      Alcotest.(check bool) "shrunk stress schedule is shorter" true
        (List.length shrunk.Spec.Counterex.schedule < List.length schedule);
      Alcotest.(check bool) "shrunk stress schedule still violates" true
        (replay shrunk.Spec.Counterex.schedule <> None);
      (* stress oracle has no completion, so 1-minimality is never vacuous *)
      let s = shrunk.Spec.Counterex.schedule in
      List.iteri
        (fun i _ ->
          let without = List.filteri (fun j _ -> j <> i) s in
          Alcotest.(check bool)
            (Fmt.str "stress 1-minimal: dropping step %d loses the violation" i)
            true
            (replay without = None))
        s)

let suite =
  [
    slow_test "dpor agrees with naive on seeded configs" dpor_agrees_with_naive;
    slow_test "dpor counterexample independently re-checks" dpor_counterexample_recheck;
    slow_test "state cache strictly reduces explored states" cache_reduces_states;
    slow_test "state hash: no collisions over an enumerated space" statehash_no_collisions;
    slow_test "state hash: collision audit vs full digest (n=3)" statehash_audit_n3;
    test "state hash merges commuted independent writes" statehash_merges_commuted_writes;
    slow_test "shrinker output violates and is 1-minimal" shrinker_one_minimal;
    test "generic ddmin finds the exact synthetic minimum" minimize_generic_synthetic;
    slow_test "generic shrinker agrees with the Counterex wrapper"
      minimize_generic_agrees_with_wrapper;
    slow_test "shrinker reaches the empty schedule when completion violates"
      shrinker_reaches_empty;
    slow_test "jobs=1 and jobs=4 agree on outcomes" jobs_agree;
    slow_test "backends and key modes agree on verdicts" backends_and_key_modes_agree;
    slow_test "stress witness schedule replays and shrinks" stress_schedule_replays_and_shrinks;
  ]
