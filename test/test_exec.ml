(* Tests for schedulers and the execution runner. *)

open Helpers
open Shm

(* A counter process: reads register pid, increments, writes back, [ops]
   times, then outputs the final value. *)
let counter ~reg ~ops =
  Program.await (fun _ ->
      let rec go left last =
        if left = 0 then Program.yield last Program.stop
        else
          Program.read reg (fun v ->
              let x = match Value.view v with Value.Int i -> i | _ -> 0 in
              Program.write reg (vi (x + 1)) (fun () -> go (left - 1) (vi (x + 1))))
      in
      go ops Value.bot)

let run_counters ~sched ~n ~ops =
  let procs = Array.init n (fun pid -> counter ~reg:pid ~ops) in
  let config = Config.create ~registers:n ~procs () in
  Exec.run ~sched ~inputs:(Exec.oneshot_inputs (Array.make n (vi 0))) ~max_steps:100_000
    config

let round_robin_runs_all () =
  let res = run_counters ~sched:(Schedule.round_robin 3) ~n:3 ~ops:5 in
  (match res.Exec.stopped with
  | Exec.All_quiescent -> ()
  | Exec.Fuel_exhausted -> Alcotest.fail "should quiesce");
  Alcotest.(check int) "everyone outputs" 3 (List.length (Config.outputs res.Exec.config));
  List.iter
    (fun (_, _, v) -> check_value "counted to 5" (vi 5) v)
    (Config.outputs res.Exec.config)

let solo_runs_only_one () =
  let res = run_counters ~sched:(Schedule.solo 1) ~n:3 ~ops:4 in
  let outs = Config.outputs res.Exec.config in
  Alcotest.(check int) "only p1 output" 1 (List.length outs);
  (match outs with
  | [ (1, 1, v) ] -> check_value "p1 counted" (vi 4) v
  | _ -> Alcotest.fail "unexpected outputs");
  check_value "p0 register untouched" Value.bot (Memory.read (Config.mem res.Exec.config) 0)

let only_restricts_to_set () =
  let res = run_counters ~sched:(Schedule.only [ 0; 2 ]) ~n:3 ~ops:3 in
  let outs = List.map (fun (pid, _, _) -> pid) (Config.outputs res.Exec.config) in
  Alcotest.(check (list int)) "only 0 and 2 ran" [ 0; 2 ] (List.sort compare outs)

let random_is_reproducible () =
  let r1 = run_counters ~sched:(Schedule.random ~seed:11 3) ~n:3 ~ops:5 in
  let r2 = run_counters ~sched:(Schedule.random ~seed:11 3) ~n:3 ~ops:5 in
  Alcotest.(check int) "same step count" r1.Exec.steps r2.Exec.steps;
  let r3 = run_counters ~sched:(Schedule.random ~seed:12 3) ~n:3 ~ops:50 in
  let r4 = run_counters ~sched:(Schedule.random ~seed:13 3) ~n:3 ~ops:50 in
  (* different seeds almost surely diverge in trace; weak check on steps
     alone can collide, so compare write interleaving via memory history *)
  ignore r3;
  ignore r4

let quantum_round_robin_bursts () =
  (* with quantum >= 2*ops each process finishes in one burst: outputs
     appear in pid order *)
  let res = run_counters ~sched:(Schedule.quantum_round_robin ~quantum:100 3) ~n:3 ~ops:4 in
  let order = List.map (fun (pid, _, _) -> pid) (Config.outputs res.Exec.config) in
  Alcotest.(check (list int)) "pid order" [ 0; 1; 2 ] order

let m_bounded_respects_survivors () =
  (* after the prefix, only the chosen m processes step: with prefix 0,
     exactly m processes produce outputs *)
  let res =
    run_counters ~sched:(Schedule.m_bounded ~seed:3 ~m:2 ~prefix:0 4) ~n:4 ~ops:3
  in
  Alcotest.(check int) "two survivors finish" 2
    (List.length (Config.outputs res.Exec.config))

let crashes_stop_processes () =
  let sched =
    Schedule.with_crashes ~crashes:[ (0, 0); (1, 0) ] (Schedule.round_robin 3)
  in
  let res = run_counters ~sched ~n:3 ~ops:3 in
  let outs = List.map (fun (pid, _, _) -> pid) (Config.outputs res.Exec.config) in
  Alcotest.(check (list int)) "only p2 survives" [ 2 ] outs

let alternating_switches_groups () =
  let res =
    run_counters ~sched:(Schedule.alternating ~burst:2 [ [ 0 ]; [ 1 ] ]) ~n:2 ~ops:6
  in
  (match res.Exec.stopped with
  | Exec.All_quiescent -> ()
  | Exec.Fuel_exhausted -> Alcotest.fail "should quiesce");
  Alcotest.(check int) "both finish" 2 (List.length (Config.outputs res.Exec.config))

let fuel_exhaustion_reported () =
  let spin =
    Program.await (fun _ ->
        let rec go () = Program.read 0 (fun _ -> go ()) in
        go ())
  in
  let config = Config.create ~registers:1 ~procs:[| spin |] () in
  let res =
    Exec.run ~sched:(Schedule.solo 0)
      ~inputs:(Exec.oneshot_inputs [| vi 0 |])
      ~max_steps:100 config
  in
  match res.Exec.stopped with
  | Exec.Fuel_exhausted -> Alcotest.(check int) "steps = fuel" 100 res.Exec.steps
  | Exec.All_quiescent -> Alcotest.fail "spinner cannot quiesce"

let trace_recording () =
  let res =
    let procs = [| counter ~reg:0 ~ops:2 |] in
    let config = Config.create ~registers:1 ~procs () in
    Exec.run ~record:true ~sched:(Schedule.solo 0)
      ~inputs:(Exec.oneshot_inputs [| vi 0 |])
      ~max_steps:100 config
  in
  (* invoke + (read+write)*2 + output = 6 events *)
  Alcotest.(check int) "event count" 6 (List.length res.Exec.trace);
  match res.Exec.trace with
  | Event.Invoke _ :: Event.Did_read _ :: Event.Did_write _ :: _ -> ()
  | _ -> Alcotest.fail "unexpected trace shape"

let repeated_inputs_finite () =
  Alcotest.(check bool) "instance 1 available" true
    (Option.is_some (Exec.repeated_inputs ~rounds:2 (fun _ i -> vi i) ~pid:0 ~instance:1));
  Alcotest.(check bool) "instance 3 exhausted" true
    (Option.is_none (Exec.repeated_inputs ~rounds:2 (fun _ i -> vi i) ~pid:0 ~instance:3))

let suite =
  [
    test "round-robin runs everyone to completion" round_robin_runs_all;
    test "solo runs exactly one process" solo_runs_only_one;
    test "only restricts the process set" only_restricts_to_set;
    test "random schedules are reproducible by seed" random_is_reproducible;
    test "quantum round-robin runs in bursts" quantum_round_robin_bursts;
    test "m-bounded scheduler honors survivor set" m_bounded_respects_survivors;
    test "crash adversary stops processes" crashes_stop_processes;
    test "alternating groups both progress" alternating_switches_groups;
    test "fuel exhaustion reported" fuel_exhaustion_reported;
    test "trace recording captures all events" trace_recording;
    test "repeated inputs are finite" repeated_inputs_finite;
  ]
