(* Shared test utilities. *)

open Shm

let value = Alcotest.testable Value.pp Value.equal

let check_value = Alcotest.check value

let vi i = Value.int i

(* Distinct outputs of one instance of a finished run. *)
let distinct_outputs result ~instance =
  Spec.Properties.distinct_values
    (Agreement.Runner.outputs_of_instance result ~instance)

(* Assert the run satisfies Validity and k-Agreement. *)
let assert_safe ~k result =
  match Spec.Properties.check_safety ~k result.Exec.config with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "safety violated: %s" msg

(* Assert the run quiesced with every process completing [ops] operations. *)
let assert_all_done ~ops result =
  (match result.Exec.stopped with
  | Exec.All_quiescent -> ()
  | Exec.Fuel_exhausted -> Alcotest.failf "run did not quiesce in %d steps" result.Exec.steps);
  match Spec.Properties.termination_errors ~expected:(fun _ -> ops) result.Exec.config with
  | [] -> ()
  | errs -> Alcotest.failf "termination: %s" (String.concat "; " errs)

let test name f = Alcotest.test_case name `Quick f

let slow_test name f = Alcotest.test_case name `Slow f

(* Seed discipline for randomized tests: every random choice derives
   from [base_seed], overridable with SA_TEST_SEED so a CI failure
   reproduces locally with one env var; [seeded_test]/[seeded_slow_test]
   print the seed in play whenever the test fails. *)
let base_seed =
  match Sys.getenv_opt "SA_TEST_SEED" with
  | None -> 0x5eed
  | Some s -> (
    match int_of_string_opt s with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "SA_TEST_SEED=%S is not an integer" s))

let with_seed_report f () =
  try f base_seed
  with e ->
    Fmt.epr "[test seed %d — rerun with SA_TEST_SEED=%d to reproduce]@." base_seed
      base_seed;
    raise e

let seeded_test name f = Alcotest.test_case name `Quick (with_seed_report f)

let seeded_slow_test name f = Alcotest.test_case name `Slow (with_seed_report f)

(* QCheck suites get the same discipline: the property PRNG derives
   from [base_seed] (not a per-file constant), and a failure prints the
   seed in play — so SA_TEST_SEED reproduces property failures exactly
   like it reproduces seeded unit tests. *)
let qcheck_to_alcotest t =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| base_seed |]) t
  in
  (name, speed, fun x -> with_seed_report (fun _seed -> run x) ())
