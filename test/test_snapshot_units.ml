(* Focused unit tests for the snapshot implementations' internals:
   Afek scan/update subprograms, double-collect retry behaviour,
   footprints, and the MW-from-SW timestamp logic. *)

open Helpers
open Shm

let run_solo ?(max_steps = 10_000) prog ~registers =
  let config = Config.create ~registers ~procs:[| prog |] () in
  let inputs = Exec.oneshot_inputs [| vi 0 |] in
  Exec.run ~record:true ~sched:(Schedule.solo 0) ~inputs ~max_steps config

(* Afek: a solo update then scan returns the written segment. *)
let afek_update_then_scan () =
  let n = 3 in
  let prog =
    Program.await (fun _ ->
        Snapshot.Afek.update ~off:0 ~n ~pid:0 ~seq:0 (vi 42) (fun seq ->
            Alcotest.(check int) "seq incremented" 1 seq;
            Snapshot.Afek.scan ~off:0 ~n (fun segments ->
                Program.yield (Value.list (Array.to_list segments)) Program.stop)))
  in
  let res = run_solo prog ~registers:n in
  match Config.outputs res.Exec.config with
  | [ (_, _, out) ] when (match Value.view out with Value.List [ _; _; _ ] -> true | _ -> false) ->
    let s0, s1, s2 =
      match Value.to_list out with [ a; b; c ] -> (a, b, c) | _ -> assert false
    in
    check_value "own segment" (vi 42) s0;
    check_value "others bot" Value.bot s1;
    check_value "others bot" Value.bot s2
  | _ -> Alcotest.fail "unexpected output shape"

(* Afek scans are genuinely atomic under interference: a writer and a
   scanner interleaved at every possible offset never tear. *)
let afek_scan_never_tears () =
  let n = 2 in
  (* writer: updates its segment 5 times with increasing values *)
  let writer =
    Program.await (fun _ ->
        let rec go seq k =
          if k > 5 then Program.stop
          else
            Snapshot.Afek.update ~off:0 ~n ~pid:0 ~seq (vi k) (fun seq -> go seq (k + 1))
        in
        go 0 1)
  in
  (* scanner: two scans; outputs both *)
  let scanner =
    Program.await (fun _ ->
        Snapshot.Afek.scan ~off:0 ~n (fun v1 ->
            Snapshot.Afek.scan ~off:0 ~n (fun v2 ->
                Program.yield (Value.pair v1.(0) v2.(0)) Program.stop)))
  in
  for seed = 0 to 39 do
    let config = Config.create ~registers:n ~procs:[| writer; scanner |] () in
    let inputs = Exec.oneshot_inputs [| vi 0; vi 0 |] in
    let res = Exec.run ~sched:(Schedule.random ~seed 2) ~inputs ~max_steps:20_000 config in
    match Config.outputs res.Exec.config with
    | [ (1, _, p) ] when (match Value.view p with Value.Pair _ -> true | _ -> false) ->
      let a = Value.fst p and b = Value.snd p in
      (* monotone: the second scan never sees an older value *)
      let to_i v = match Value.view v with Value.Int i -> i | Value.Bot -> 0 | _ -> -1 in
      if to_i b < to_i a then
        Alcotest.failf "seed %d: scans went backwards (%a then %a)" seed Value.pp a
          Value.pp b
    | _ -> Alcotest.failf "seed %d: missing scanner output" seed
  done

(* Double collect with max_retries: a perpetually-interfered scan fails
   loudly instead of spinning. *)
let double_collect_retry_bound () =
  let api = Snapshot.Double_collect.make ~off:0 ~len:2 ~pid:1 ~max_retries:3 () in
  let scanner =
    Program.await (fun _ -> api.Snapshot.Snap_api.scan (fun _ view ->
        Program.yield view.(0) Program.stop))
  in
  (* interferer: writes register 0 forever (raw writes with fresh tags) *)
  let interferer =
    Program.await (fun _ ->
        let rec go k =
          Program.write 0 (Value.pair (vi k) (vi k)) (fun () -> go (k + 1))
        in
        go 0)
  in
  let config = Config.create ~registers:2 ~procs:[| scanner; interferer |] () in
  let inputs = Exec.oneshot_inputs [| vi 0; vi 0 |] in
  (* alternate strictly so every double collect sees a change *)
  let sched = Schedule.round_robin 2 in
  Alcotest.check_raises "scan gives up"
    (Failure "Double_collect.scan: no clean double collect after 3 attempts")
    (fun () -> ignore (Exec.run ~sched ~inputs ~max_steps:5_000 config))

(* Footprints document the space story. *)
let footprints () =
  let f1 = Snapshot.Atomic.footprint ~len:7 in
  Alcotest.(check int) "atomic regs" 7 f1.Snapshot.Snap_api.registers;
  Alcotest.(check bool) "atomic wait-free" true f1.Snapshot.Snap_api.wait_free;
  let f2 = Snapshot.Double_collect.footprint ~len:7 in
  Alcotest.(check int) "collect regs" 7 f2.Snapshot.Snap_api.registers;
  Alcotest.(check bool) "collect not wait-free" false f2.Snapshot.Snap_api.wait_free;
  let f3 = Snapshot.Mw_from_sw.footprint ~n:5 in
  Alcotest.(check int) "sw regs = n" 5 f3.Snapshot.Snap_api.registers;
  Alcotest.(check bool) "sw wait-free" true f3.Snapshot.Snap_api.wait_free

(* MW-from-SW: two writers to the same component; reader sees the later
   write once both finished (timestamp order respects real time). *)
let mw_sw_timestamp_order () =
  let n = 3 in
  let mk pid v =
    let api = Snapshot.Mw_from_sw.make ~off:0 ~n ~components:2 ~pid in
    Program.await (fun _ ->
        api.Snapshot.Snap_api.update 0 (vi v) (fun _ -> Program.stop))
  in
  let reader =
    let api = Snapshot.Mw_from_sw.make ~off:0 ~n ~components:2 ~pid:2 in
    Program.await (fun _ ->
        api.Snapshot.Snap_api.scan (fun _ view -> Program.yield view.(0) Program.stop))
  in
  let config = Config.create ~registers:n ~procs:[| mk 0 10; mk 1 20; reader |] () in
  let inputs = Exec.oneshot_inputs [| vi 0; vi 0; vi 0 |] in
  (* strictly sequential: writer 0 entirely, then writer 1, then reader *)
  let sched = Schedule.quantum_round_robin ~quantum:10_000 3 in
  let res = Exec.run ~sched ~inputs ~max_steps:100_000 config in
  match Config.outputs res.Exec.config with
  | [ (2, _, v) ] -> check_value "later write wins" (vi 20) v
  | _ -> Alcotest.fail "missing reader output"

(* Anonymous double collect produces distinct tags across processes
   (no aliasing in practice). *)
let anonymous_tags_fresh () =
  let mk seed =
    let api = Snapshot.Double_collect.make_anonymous ~off:0 ~len:1 ~seed () in
    Program.await (fun _ ->
        api.Snapshot.Snap_api.update 0 (vi 1) (fun _ -> Program.stop))
  in
  let config = Config.create ~registers:1 ~procs:[| mk 1; mk 2 |] () in
  let inputs = Exec.oneshot_inputs [| vi 0; vi 0 |] in
  let res =
    Exec.run ~record:true ~sched:(Schedule.round_robin 2) ~inputs ~max_steps:100 config
  in
  let tags =
    res.Exec.trace
    |> List.filter_map (fun ev ->
           match ev with
           | Event.Did_write { value; _ } -> (
             match Value.view value with
             | Value.Pair (tag, _) -> Some tag
             | _ -> None)
           | _ -> None)
  in
  Alcotest.(check int) "two writes" 2 (List.length tags);
  match tags with
  | [ a; b ] -> Alcotest.(check bool) "distinct tags" false (Value.equal a b)
  | _ -> assert false

let suite =
  [
    test "afek: update then scan" afek_update_then_scan;
    test "afek: scans never tear under interference" afek_scan_never_tears;
    test "double collect: retry bound fails loudly" double_collect_retry_bound;
    test "footprints" footprints;
    test "mw-from-sw: timestamp order respects real time" mw_sw_timestamp_order;
    test "anonymous tags are fresh" anonymous_tags_fresh;
  ]
