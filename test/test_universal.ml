(* Tests of the universal construction (replicated state machines over
   repeated agreement). *)

open Helpers
open Universal

let counter_machine =
  {
    Rsm.init = 0;
    apply =
      (fun s cmd ->
        match Machines.tagged cmd with
        | Some ("add", x) -> s + Shm.Value.to_int x
        | _ -> s);
  }

let add pid slot = Shm.Value.pair (Shm.Value.str "add") (Shm.Value.int ((10 * slot) + pid))

(* Consensus underneath: all replicas converge on one log and state. *)
let consensus_replicas_agree () =
  let p = Agreement.Params.make ~n:4 ~m:1 ~k:1 in
  let run = Rsm.replicate p counter_machine ~commands:add ~slots:5 in
  Alcotest.(check bool) "quiescent" true run.Rsm.quiescent;
  (match Rsm.agreement_log run with
  | Some log -> Alcotest.(check int) "log has 5 slots" 5 (List.length log)
  | None -> Alcotest.fail "replicas diverged under consensus");
  match run.Rsm.replicas with
  | r0 :: rest ->
    List.iter
      (fun (r : int Rsm.replica) ->
        Alcotest.(check int) "same state" r0.Rsm.state r.Rsm.state)
      rest
  | [] -> Alcotest.fail "no replicas"

(* The agreed log only contains proposed commands, slot by slot. *)
let log_is_valid () =
  let p = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
  let run =
    Rsm.replicate ~sched:(Shm.Schedule.quantum_round_robin ~quantum:500 3) p
      counter_machine ~commands:add ~slots:4
  in
  match Rsm.agreement_log run with
  | None -> Alcotest.fail "diverged"
  | Some log ->
    List.iteri
      (fun i cmd ->
        let slot = i + 1 in
        let proposed = List.init 3 (fun pid -> add pid slot) in
        Alcotest.(check bool)
          (Printf.sprintf "slot %d command was proposed" slot)
          true
          (List.exists (Shm.Value.equal cmd) proposed))
      log

(* Space: the whole machine lives in min(n+2m-k, n) registers no matter
   how many commands execute. *)
let constant_space () =
  let p = Agreement.Params.make ~n:4 ~m:1 ~k:1 in
  let short = Rsm.replicate p counter_machine ~commands:add ~slots:2 in
  let long = Rsm.replicate p counter_machine ~commands:add ~slots:12 in
  Alcotest.(check int) "same registers" short.Rsm.registers long.Rsm.registers;
  Alcotest.(check bool) "within bound" true
    (long.Rsm.registers <= Agreement.Params.registers_upper p)

(* k = 2: slots may branch, but never more than k ways, and the number
   of distinct replica views stays bounded. *)
let k_branching_bounded () =
  let p = Agreement.Params.make ~n:4 ~m:2 ~k:2 in
  for seed = 0 to 9 do
    let sched = Shm.Schedule.m_bounded ~seed ~m:2 ~prefix:80 4 in
    let run =
      Rsm.replicate ~sched ~max_steps:2_000_000 p counter_machine ~commands:add ~slots:3
    in
    if run.Rsm.quiescent then begin
      (* branch analysis needs the raw config; recompute via a fresh run
         record by reusing outputs embedded in replicas *)
      let views = Ledger.distinct_views run in
      Alcotest.(check bool) "views bounded" true (views >= 1 && views <= 4)
    end
  done

let ledger_slot_analysis () =
  let p = Agreement.Params.make ~n:4 ~m:2 ~k:2 in
  let result =
    Agreement.Runner.run_repeated ~rounds:3
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:600 4)
      ~input_fn:(fun pid slot -> add pid slot)
      p
  in
  let infos = Ledger.slot_infos result.Shm.Exec.config in
  Alcotest.(check int) "three slots" 3 (List.length infos);
  Alcotest.(check bool) "branching within k" true (Ledger.max_branching infos <= 2);
  infos
  |> List.iter (fun i ->
         let followers = List.concat_map snd i.Ledger.followers in
         Alcotest.(check int)
           (Printf.sprintf "slot %d: every replica follows a branch" i.Ledger.slot)
           4 (List.length followers))

(* A register-valued machine: key-value store commands. *)
let kv_machine () =
  let machine =
    {
      Rsm.init = [];
      apply =
        (fun s cmd ->
          match Machines.tagged cmd with
          | Some (key, v) -> (key, v) :: List.remove_assoc key s
          | None -> s);
    }
  in
  let commands pid slot =
    Shm.Value.pair (Shm.Value.str (Printf.sprintf "key%d" (slot mod 2))) (vi pid)
  in
  let p = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
  let run = Rsm.replicate p machine ~commands ~slots:6 in
  match run.Rsm.replicas with
  | r :: _ ->
    Alcotest.(check int) "two keys" 2 (List.length r.Rsm.state);
    (match Rsm.agreement_log run with
    | Some _ -> ()
    | None -> Alcotest.fail "diverged")
  | [] -> Alcotest.fail "no replicas"

(* ---- the machine catalog ---- *)

let queue_machine () =
  let p = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
  (* pid 0 enqueues, pid 1 dequeues, pid 2 enqueues *)
  let commands pid slot =
    if pid = 1 then Machines.deq else Machines.enq (vi ((10 * slot) + pid))
  in
  let run = Rsm.replicate p Machines.fifo_queue ~commands ~slots:6 in
  match (Rsm.agreement_log run, run.Rsm.replicas) with
  | Some log, r :: _ ->
    Alcotest.(check int) "six commands" 6 (List.length log);
    let st = r.Rsm.state in
    (* conservation: enqueued = still queued + dequeued (minus ⊥s) *)
    let enqueued =
      List.length
        (List.filter
           (fun c -> match Machines.tagged c with Some ("enq", _) -> true | _ -> false)
           log)
    in
    let real_deqs =
      List.length
        (List.filter (fun v -> not (Shm.Value.equal v Shm.Value.bot)) st.Machines.dequeued)
    in
    Alcotest.(check int) "conservation" enqueued
      (List.length st.Machines.items + real_deqs);
    (* FIFO: dequeued values appear in enqueue order *)
    let enq_order =
      List.filter_map
        (fun c -> match Machines.tagged c with Some ("enq", v) -> Some v | _ -> None)
        log
    in
    let deq_values =
      List.filter (fun v -> not (Shm.Value.equal v Shm.Value.bot)) st.Machines.dequeued
    in
    let rec is_prefix xs ys =
      match (xs, ys) with
      | [], _ -> true
      | x :: xs', y :: ys' -> Shm.Value.equal x y && is_prefix xs' ys'
      | _ :: _, [] -> false
    in
    Alcotest.(check bool) "FIFO order" true (is_prefix deq_values enq_order)
  | _ -> Alcotest.fail "queue replication failed"

let bank_never_negative () =
  let p = Agreement.Params.make ~n:4 ~m:1 ~k:1 in
  let commands pid slot =
    if (pid + slot) mod 2 = 0 then Machines.deposit (5 + pid)
    else Machines.withdraw (7 + slot)
  in
  let run = Rsm.replicate p Machines.bank ~commands ~slots:8 in
  run.Rsm.replicas
  |> List.iter (fun (r : int Rsm.replica) ->
         Alcotest.(check bool)
           (Printf.sprintf "replica %d balance >= 0" r.Rsm.pid)
           true (r.Rsm.state >= 0));
  match Rsm.agreement_log run with
  | Some _ -> ()
  | None -> Alcotest.fail "bank replicas diverged"

let lww_register_machine () =
  let p = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
  let commands pid slot = Machines.write (vi ((100 * slot) + pid)) in
  let run = Rsm.replicate p Machines.register ~commands ~slots:4 in
  match (Rsm.agreement_log run, run.Rsm.replicas) with
  | Some log, r :: _ ->
    (* final state is the last committed write *)
    let last =
      match List.rev log with
      | c :: _ -> (
        match Shm.Value.view c with Shm.Value.Pair (_, v) -> v | _ -> Shm.Value.bot)
      | _ -> Shm.Value.bot
    in
    check_value "last write wins" last r.Rsm.state
  | _ -> Alcotest.fail "register replication failed"

(* --- edge cases --- *)

(* slots = 0: nothing to decide, the run quiesces immediately with
   empty logs and pristine state. *)
let zero_slots () =
  let p = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
  let run = Rsm.replicate p counter_machine ~commands:add ~slots:0 in
  Alcotest.(check bool) "quiescent" true run.Rsm.quiescent;
  List.iter
    (fun (r : int Rsm.replica) ->
      Alcotest.(check int) "empty log" 0 (List.length r.Rsm.log);
      Alcotest.(check int) "initial state" 0 r.Rsm.state)
    run.Rsm.replicas;
  match Rsm.agreement_log run with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "zero slots produced a non-empty log"
  | None -> Alcotest.fail "zero slots diverged"

(* A single replica is not a legal system: the paper's standing
   assumption is 1 ≤ m ≤ k < n, so n = 1 admits no valid k. *)
let single_replica_rejected () =
  Alcotest.check_raises "n = 1 is rejected"
    (Invalid_argument "Params.make: need n > 1, got n=1") (fun () ->
      ignore (Agreement.Params.make ~n:1 ~m:1 ~k:1));
  (* n = 2 is the smallest replicated service; it works end to end *)
  let p = Agreement.Params.make ~n:2 ~m:1 ~k:1 in
  let run = Rsm.replicate p counter_machine ~commands:add ~slots:3 in
  Alcotest.(check bool) "n=2 quiesces" true run.Rsm.quiescent;
  match Rsm.agreement_log run with
  | Some log -> Alcotest.(check int) "3 slots" 3 (List.length log)
  | None -> Alcotest.fail "n=2 consensus diverged"

(* The incremental stepper decides the same slots replicate does: fold
   step_slot and compare safety, decisions, and the space bill. *)
let stepper_slot_at_a_time () =
  let p = Agreement.Params.make ~n:4 ~m:1 ~k:1 in
  let stepper = ref (Rsm.Stepper.create p) in
  for slot = 1 to 6 do
    let outcome =
      Rsm.Stepper.step_slot !stepper ~proposals:(fun pid -> Some (add pid slot))
    in
    Alcotest.(check bool) "slot quiesced" true outcome.Rsm.Stepper.quiescent;
    Alcotest.(check int) "all replicas decided"
      p.Agreement.Params.n
      (List.length outcome.Rsm.Stepper.decisions);
    (* consensus: every decision in the slot is the same proposed value *)
    (match outcome.Rsm.Stepper.decisions with
    | [] -> Alcotest.fail "no decisions"
    | (_, v) :: rest ->
      List.iter (fun (_, v') -> check_value "consensus" v v') rest;
      Alcotest.(check bool) "validity" true
        (List.exists (fun pid -> Shm.Value.equal v (add pid slot))
           (List.init p.Agreement.Params.n Fun.id)));
    stepper := outcome.Rsm.Stepper.stepper
  done;
  Alcotest.(check int) "6 slots decided" 6 (Rsm.Stepper.slot !stepper);
  (match Spec.Properties.check_safety ~k:1 (Rsm.Stepper.config !stepper) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "safety: %s" e);
  let bound = min (p.Agreement.Params.n + (2 * p.Agreement.Params.m) - p.Agreement.Params.k) p.Agreement.Params.n in
  Alcotest.(check bool) "registers within min(n+2m-k, n)" true
    (Rsm.Stepper.registers_used !stepper <= bound)

(* A replica that proposes nothing sits the slot out; the rest decide
   under a schedule restricted to the proposers. *)
let stepper_sitting_out () =
  let p = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
  let live = [ 0; 2 ] in
  let outcome =
    Rsm.Stepper.step_slot
      ~sched:(Shm.Schedule.alternating ~burst:800 (List.map (fun p -> [ p ]) live))
      (Rsm.Stepper.create p)
      ~proposals:(fun pid -> if List.mem pid live then Some (vi (pid + 1)) else None)
  in
  Alcotest.(check bool) "quiesced without pid 1" true outcome.Rsm.Stepper.quiescent;
  Alcotest.(check int) "both proposers decided" 2
    (List.length outcome.Rsm.Stepper.decisions);
  Alcotest.(check bool) "pid 1 decided nothing" true
    (not (List.mem_assoc 1 outcome.Rsm.Stepper.decisions))

let suite =
  [
    test "consensus replicas agree on log and state" consensus_replicas_agree;
    test "zero slots quiesce with empty logs" zero_slots;
    test "single replica rejected; n=2 smallest service" single_replica_rejected;
    test "stepper decides slot at a time" stepper_slot_at_a_time;
    test "stepper lets replicas sit a slot out" stepper_sitting_out;
    test "replicated FIFO queue: conservation + order" queue_machine;
    test "replicated bank never goes negative" bank_never_negative;
    test "replicated LWW register" lww_register_machine;
    test "agreed log contains only proposed commands" log_is_valid;
    test "space is constant in the number of commands" constant_space;
    test "k=2 branching stays bounded" k_branching_bounded;
    test "ledger slot analysis" ledger_slot_analysis;
    test "key-value store machine" kv_machine;
  ]
