(* Tests of the native multicore backend: the Figure 3 algorithm
   running on real OCaml 5 domains over atomics.

   Safety must hold on every real interleaving the hardware produces;
   termination comes from the backoff contention management (the
   paper's own framing of obstruction-freedom).  These tests use small
   n so they run on any machine. *)

open Helpers
open Agreement

let check_instance ~k inputs decisions =
  let distinct = Spec.Properties.distinct_values (Array.to_list decisions) in
  Alcotest.(check bool)
    (Printf.sprintf "at most %d distinct decisions (got %d)" k (List.length distinct))
    true
    (List.length distinct <= k);
  Array.iter
    (fun d ->
      Alcotest.(check bool) "validity" true
        (Array.exists (Shm.Value.equal d) inputs))
    decisions

let consensus_on_domains () =
  let params = Params.make ~n:3 ~m:1 ~k:1 in
  for trial = 0 to 9 do
    let inputs = Array.init 3 (fun pid -> vi ((10 * trial) + pid)) in
    let _, decisions = Native.Native_agreement.run_instance ~seed:trial ~params inputs in
    check_instance ~k:1 inputs decisions;
    (* consensus: all three agree *)
    check_value "p1 = p0" decisions.(0) decisions.(1);
    check_value "p2 = p0" decisions.(0) decisions.(2)
  done

let set_agreement_on_domains () =
  let params = Params.make ~n:4 ~m:2 ~k:2 in
  for trial = 0 to 9 do
    let inputs = Array.init 4 (fun pid -> vi ((100 * trial) + pid)) in
    let _, decisions = Native.Native_agreement.run_instance ~seed:trial ~params inputs in
    check_instance ~k:2 inputs decisions
  done

let identical_inputs_native () =
  let params = Params.make ~n:4 ~m:1 ~k:2 in
  let inputs = Array.make 4 (vi 7) in
  let _, decisions = Native.Native_agreement.run_instance ~params inputs in
  Array.iter (fun d -> check_value "the common input" (vi 7) d) decisions

let register_count_native () =
  let params = Params.make ~n:4 ~m:1 ~k:2 in
  let t = Native.Native_agreement.create ~params in
  Alcotest.(check int) "r = n+2m-k atomics" (Params.r_oneshot params)
    (Native.Native_agreement.registers t)

(* The native snapshot alone: sequential semantics. *)
let native_snapshot_sequential () =
  let s = Native.Native_snapshot.create ~components:3 in
  let h = Native.Native_snapshot.handle s ~pid:0 in
  Native.Native_snapshot.update h 1 (vi 5);
  Native.Native_snapshot.update h 2 (vi 6);
  let view = Native.Native_snapshot.scan h in
  check_value "c0" Shm.Value.bot view.(0);
  check_value "c1" (vi 5) view.(1);
  check_value "c2" (vi 6) view.(2)

(* Concurrent smoke: writers hammer the snapshot while a scanner takes
   clean double collects; each scan must be a plausible memory state
   (values from the writers' domains only). *)
let native_snapshot_concurrent () =
  let s = Native.Native_snapshot.create ~components:2 in
  let writer pid =
    Domain.spawn (fun () ->
        let h = Native.Native_snapshot.handle s ~pid in
        for j = 1 to 500 do
          Native.Native_snapshot.update h (pid mod 2) (vi ((1000 * pid) + j))
        done)
  in
  let scanner =
    Domain.spawn (fun () ->
        let h = Native.Native_snapshot.handle s ~pid:9 in
        let views = ref [] in
        for _ = 1 to 50 do
          views := Native.Native_snapshot.scan h :: !views
        done;
        !views)
  in
  let w1 = writer 1 and w2 = writer 2 in
  let views = Domain.join scanner in
  Domain.join w1;
  Domain.join w2;
  List.iter
    (fun view ->
      Array.iter
        (fun v ->
          match Shm.Value.view v with
          | Shm.Value.Bot -> ()
          | Shm.Value.Int x ->
            Alcotest.(check bool) "value from a writer" true (x >= 1000 && x < 3000)
          | _ -> Alcotest.fail "unexpected value shape")
        view)
    views

(* Repeated agreement on domains: every instance safe, histories make
   laggards catch up, constant shared space. *)
let repeated_on_domains () =
  let params = Params.make ~n:3 ~m:1 ~k:1 in
  for trial = 0 to 4 do
    let rounds = 4 in
    let input ~pid ~round = vi ((1000 * trial) + (10 * round) + pid) in
    let obj, decisions =
      Native.Native_repeated.run ~seed:trial ~params ~rounds input
    in
    Alcotest.(check int) "constant space" (Params.r_oneshot params)
      (Native.Native_repeated.registers obj);
    for round = 1 to rounds do
      let per_round =
        Array.to_list (Array.map (fun d -> d.(round - 1)) decisions)
      in
      let distinct = Spec.Properties.distinct_values per_round in
      Alcotest.(check int)
        (Printf.sprintf "trial %d round %d: consensus" trial round)
        1 (List.length distinct);
      (* validity: the decision is one of this round's proposals *)
      let proposals = List.init 3 (fun pid -> input ~pid ~round) in
      Alcotest.(check bool) "valid" true
        (List.exists (Shm.Value.equal (List.hd distinct)) proposals)
    done
  done

(* High-contention sweep: up to 8 domains hammering repeated instances
   across several (n,m,k) shapes.  Every round must satisfy validity
   and k-agreement, and the shared object must stay at n+2m−k atomics
   no matter how many instances executed. *)
let high_contention_sweep seed =
  [ (5, 1, 2, 3); (6, 2, 3, 3); (8, 2, 2, 2); (8, 3, 4, 2) ]
  |> List.iter (fun (n, m, k, rounds) ->
         let params = Params.make ~n ~m ~k in
         let input ~pid ~round = vi ((10_000 * round) + (10 * pid) + (seed land 7)) in
         let obj, decisions = Native.Native_repeated.run ~seed ~params ~rounds input in
         Alcotest.(check int)
           (Printf.sprintf "n=%d m=%d k=%d: constant space" n m k)
           (Params.r_oneshot params)
           (Native.Native_repeated.registers obj);
         for round = 1 to rounds do
           let per_round =
             Array.to_list (Array.map (fun d -> d.(round - 1)) decisions)
           in
           let distinct = Spec.Properties.distinct_values per_round in
           Alcotest.(check bool)
             (Printf.sprintf "n=%d k=%d round %d: <= k distinct (got %d)" n k round
                (List.length distinct))
             true
             (List.length distinct <= k);
           let proposals = List.init n (fun pid -> input ~pid ~round) in
           List.iter
             (fun d ->
               Alcotest.(check bool)
                 (Printf.sprintf "n=%d k=%d round %d: validity" n k round)
                 true
                 (List.exists (Shm.Value.equal d) proposals))
             per_round
         done)

(* Sessions are reusable: successive proposes from the same session run
   successive instances, and each decision is one of that instance's
   proposals. *)
let session_reuse () =
  let n = 3 in
  let params = Params.make ~n ~m:1 ~k:1 in
  let t = Native.Native_repeated.create ~params in
  let rounds = 3 in
  let workers =
    Array.init n (fun pid ->
        Domain.spawn (fun () ->
            let s = Native.Native_repeated.session t ~pid ~seed:pid in
            Array.init rounds (fun round ->
                Native.Native_repeated.propose s (vi ((100 * round) + pid)))))
  in
  let decisions = Array.map Domain.join workers in
  for round = 0 to rounds - 1 do
    let per_round = Array.to_list (Array.map (fun d -> d.(round)) decisions) in
    Alcotest.(check int)
      (Printf.sprintf "round %d: consensus across reused sessions" round)
      1
      (List.length (Spec.Properties.distinct_values per_round));
    Alcotest.(check bool) "validity" true
      (List.exists
         (fun d -> List.exists (Shm.Value.equal d) (List.init n (fun pid -> vi ((100 * round) + pid))))
         per_round)
  done;
  Alcotest.(check int) "space unchanged after 3 instances" (Params.r_oneshot params)
    (Native.Native_repeated.registers t)

(* The space claim, swept: every native object allocates exactly
   n+2m−k atomics, for one-shot and repeated alike. *)
let register_count_sweep () =
  [ (2, 1, 1); (3, 1, 1); (4, 1, 2); (4, 2, 2); (6, 2, 3); (8, 3, 3); (8, 2, 4) ]
  |> List.iter (fun (n, m, k) ->
         let params = Params.make ~n ~m ~k in
         let expected = Params.r_oneshot params in
         Alcotest.(check int)
           (Printf.sprintf "one-shot n=%d m=%d k=%d: %d = n+2m-k" n m k expected)
           expected
           (Native.Native_agreement.registers (Native.Native_agreement.create ~params));
         Alcotest.(check int)
           (Printf.sprintf "repeated n=%d m=%d k=%d: %d = n+2m-k" n m k expected)
           expected
           (Native.Native_repeated.registers (Native.Native_repeated.create ~params));
         Alcotest.(check int) "and that is n+2m-k" ((n + (2 * m)) - k) expected)

let repeated_k2_on_domains () =
  let params = Params.make ~n:4 ~m:2 ~k:2 in
  let rounds = 3 in
  let input ~pid ~round = vi ((100 * round) + pid) in
  let _, decisions = Native.Native_repeated.run ~seed:5 ~params ~rounds input in
  for round = 1 to rounds do
    let per_round = Array.to_list (Array.map (fun d -> d.(round - 1)) decisions) in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: <= 2 distinct" round)
      true
      (List.length (Spec.Properties.distinct_values per_round) <= 2)
  done

let suite =
  [
    slow_test "consensus across 3 domains, 10 trials" consensus_on_domains;
    slow_test "repeated consensus across domains, 5 trials x 4 rounds" repeated_on_domains;
    slow_test "repeated 2-set agreement across 4 domains" repeated_k2_on_domains;
    slow_test "2-set agreement across 4 domains, 10 trials" set_agreement_on_domains;
    slow_test "identical inputs decide that value (native)" identical_inputs_native;
    test "native register count = n+2m-k" register_count_native;
    test "native register count sweep (one-shot and repeated)" register_count_sweep;
    seeded_slow_test "high-contention sweep: up to 8 domains, multi-round"
      high_contention_sweep;
    slow_test "session reuse across instances" session_reuse;
    test "native snapshot: sequential semantics" native_snapshot_sequential;
    slow_test "native snapshot: concurrent scans are clean" native_snapshot_concurrent;
  ]
