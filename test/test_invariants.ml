(* Tests of the Lemma 3 / Lemma 12 trace invariants and the bounded
   exhaustive model checker. *)

open Helpers
open Agreement

(* ---- Lemma 3 / Lemma 12 invariants on real runs ---- *)

let run_oneshot_trace ~seed p =
  let n = p.Params.n in
  let config = Instances.oneshot p in
  let inputs = Shm.Exec.oneshot_inputs (Array.init n (fun pid -> vi (pid + 1))) in
  Shm.Exec.run ~record:true ~sched:(Shm.Schedule.random ~seed n) ~inputs
    ~max_steps:50_000 config

let lemma3_holds_on_runs () =
  for seed = 0 to 29 do
    let p = Params.make ~n:5 ~m:2 ~k:3 in
    let res = run_oneshot_trace ~seed p in
    match
      Spec.Invariants.check_lemma3 ~registers:(Params.r_oneshot p) res.Shm.Exec.trace
    with
    | [] -> ()
    | v :: _ ->
      Alcotest.failf "seed %d: %a" seed Spec.Invariants.pp_violation v
  done

let lemma12_holds_on_runs () =
  for seed = 0 to 19 do
    let p = Params.make ~n:4 ~m:1 ~k:2 in
    let config = Instances.repeated p in
    let inputs = Shm.Exec.repeated_inputs ~rounds:3 (fun pid i -> vi ((10 * i) + pid)) in
    let res =
      Shm.Exec.run ~record:true ~sched:(Shm.Schedule.random ~seed 4) ~inputs
        ~max_steps:80_000 config
    in
    match
      Spec.Invariants.check_lemma12 ~registers:(Params.r_oneshot p) res.Shm.Exec.trace
    with
    | [] -> ()
    | v :: _ -> Alcotest.failf "seed %d: %a" seed Spec.Invariants.pp_violation v
  done

(* The invariant checker itself detects violations (negative control):
   a hand-crafted trace where one id writes two different values. *)
let lemma3_detects_violation () =
  let mk_write reg value = Shm.Event.Did_write { pid = 0; reg; value } in
  let pair v id = Shm.Value.pair (vi v) (vi id) in
  let trace = [ mk_write 0 (pair 1 7); mk_write 1 (pair 2 7) ] in
  match Spec.Invariants.check_lemma3 ~registers:2 trace with
  | [] -> Alcotest.fail "violation not detected"
  | v :: _ -> Alcotest.(check int) "at the second write" 1 v.Spec.Invariants.at_step

let lemma12_detects_violation () =
  let mk_write reg value = Shm.Event.Did_write { pid = 0; reg; value } in
  let tup v id t = Shm.Value.list [ vi v; vi id; vi t; Shm.Value.list [] ] in
  let trace = [ mk_write 0 (tup 1 7 3); mk_write 1 (tup 2 7 3) ] in
  Alcotest.(check bool) "violation detected" true
    (Spec.Invariants.check_lemma12 ~registers:2 trace <> []);
  (* different instances are fine *)
  let trace2 = [ mk_write 0 (tup 1 7 3); mk_write 1 (tup 2 7 4) ] in
  Alcotest.(check bool) "different t ok" true
    (Spec.Invariants.check_lemma12 ~registers:2 trace2 = [])

(* ---- bounded exhaustive model checking ---- *)

let inputs_for n = Shm.Exec.oneshot_inputs (Array.init n (fun pid -> vi (pid + 1)))

let check_safety ~k config = Spec.Properties.check_safety ~k config

(* One-shot consensus for n = 2 over the proper r = 3 components: every
   schedule prefix of length 12 leads to a safe completion. *)
let model_check_consensus_n2 () =
  let p = Params.make ~n:2 ~m:1 ~k:1 in
  let config = Instances.oneshot p in
  match
    Spec.Modelcheck.exhaustive ~depth:12 ~inputs:(inputs_for 2)
      ~check:(check_safety ~k:1) config
  with
  | Spec.Modelcheck.Ok_bounded stats ->
    Alcotest.(check bool) "explored many nodes" true (stats.Spec.Modelcheck.explored > 1000)
  | Spec.Modelcheck.Counterexample _ as c ->
    Alcotest.failf "%a" Spec.Modelcheck.pp_outcome c

(* n = 3, k = 2: exhaustive to depth 9. *)
let model_check_k2_n3 () =
  let p = Params.make ~n:3 ~m:1 ~k:2 in
  let config = Instances.oneshot p in
  match
    Spec.Modelcheck.exhaustive ~depth:9 ~inputs:(inputs_for 3)
      ~check:(check_safety ~k:2) config
  with
  | Spec.Modelcheck.Ok_bounded _ -> ()
  | Spec.Modelcheck.Counterexample _ as c ->
    Alcotest.failf "%a" Spec.Modelcheck.pp_outcome c

(* A genuinely broken instance: one register for 2-process consensus.
   The model checker finds a counterexample schedule. *)
let model_check_finds_violation () =
  let p = Params.make ~n:2 ~m:1 ~k:1 in
  let config = Instances.oneshot ~r:1 p in
  match
    Spec.Modelcheck.exhaustive ~depth:10 ~inputs:(inputs_for 2)
      ~check:(check_safety ~k:1) config
  with
  | Spec.Modelcheck.Counterexample { schedule; _ } ->
    Alcotest.(check bool) "non-empty schedule" true (schedule <> [])
  | Spec.Modelcheck.Ok_bounded _ ->
    Alcotest.fail "expected a violation with r = 1"

(* The full register-level stack: 2-process consensus over the
   single-writer wait-free snapshot, exhaustively to depth 10. *)
let model_check_register_level () =
  let p = Params.make ~n:2 ~m:1 ~k:1 in
  let config = Instances.oneshot ~impl:Instances.Sw_based p in
  match
    Spec.Modelcheck.exhaustive ~depth:10 ~inputs:(inputs_for 2)
      ~completion_steps:200_000 ~check:(check_safety ~k:1) config
  with
  | Spec.Modelcheck.Ok_bounded _ -> ()
  | Spec.Modelcheck.Counterexample _ as c ->
    Alcotest.failf "%a" Spec.Modelcheck.pp_outcome c

(* Validity, exhaustively: outputs are always inputs, whatever the
   schedule. *)
let model_check_validity () =
  let p = Params.make ~n:3 ~m:2 ~k:2 in
  let config = Instances.oneshot p in
  let check config =
    match Spec.Properties.validity_errors config with
    | [] -> Ok ()
    | e :: _ -> Error e
  in
  match
    Spec.Modelcheck.exhaustive ~depth:8 ~inputs:(inputs_for 3) ~check config
  with
  | Spec.Modelcheck.Ok_bounded _ -> ()
  | Spec.Modelcheck.Counterexample _ as c ->
    Alcotest.failf "%a" Spec.Modelcheck.pp_outcome c

let suite =
  [
    test "Lemma 3 invariant holds on 30 random runs" lemma3_holds_on_runs;
    test "Lemma 12 invariant holds on 20 random runs" lemma12_holds_on_runs;
    test "Lemma 3 checker detects violations" lemma3_detects_violation;
    test "Lemma 12 checker detects violations" lemma12_detects_violation;
    slow_test "model check: consensus n=2 safe to depth 12" model_check_consensus_n2;
    slow_test "model check: k=2 n=3 safe to depth 9" model_check_k2_n3;
    slow_test "model check: finds violation with r=1" model_check_finds_violation;
    slow_test "model check: register-level stack safe to depth 10"
      model_check_register_level;
    slow_test "model check: validity under all schedules" model_check_validity;
  ]
