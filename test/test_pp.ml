(* Golden tests for the pretty-printers — the strings developers and
   the CLI actually see. *)

open Helpers
open Shm

let str pp x = Fmt.str "%a" pp x

let value_pp () =
  Alcotest.(check string) "bot" "⊥" (Value.to_string Value.bot);
  Alcotest.(check string) "int" "42" (Value.to_string (vi 42));
  Alcotest.(check string) "str" "\"hi\"" (Value.to_string (Value.str "hi"));
  Alcotest.(check string) "pair" "(1,2)" (Value.to_string (Value.pair (vi 1) (vi 2)));
  Alcotest.(check string) "list" "[1;⊥]"
    (Value.to_string (Value.list [ vi 1; Value.bot ]));
  Alcotest.(check string) "nested" "((1,⊥),[])"
    (Value.to_string (Value.pair (Value.pair (vi 1) Value.bot) (Value.list [])))

let event_pp () =
  Alcotest.(check string) "invoke" "p2: invoke #1 Propose(7)"
    (str Event.pp (Event.Invoke { pid = 2; instance = 1; input = vi 7 }));
  Alcotest.(check string) "write" "p0: write R3 := (1,0)"
    (str Event.pp (Event.Did_write { pid = 0; reg = 3; value = Value.pair (vi 1) (vi 0) }));
  Alcotest.(check string) "read" "p1: read R0 -> ⊥"
    (str Event.pp (Event.Did_read { pid = 1; reg = 0; value = Value.bot }));
  Alcotest.(check string) "scan" "p1: scan [0..4]"
    (str Event.pp (Event.Did_scan { pid = 1; off = 0; len = 5 }));
  Alcotest.(check string) "output" "p3: output #2 -> 9"
    (str Event.pp (Event.Output { pid = 3; instance = 2; value = vi 9 }))

let program_op_pp () =
  Alcotest.(check string) "read" "read R7" (str Program.pp_op (Program.Read 7));
  Alcotest.(check string) "write" "write R2 := 5"
    (str Program.pp_op (Program.Write (2, vi 5)));
  Alcotest.(check string) "scan" "scan [1..3]" (str Program.pp_op (Program.Scan (1, 3)))

let params_pp () =
  Alcotest.(check string) "params" "(n=5,m=2,k=3)"
    (Agreement.Params.to_string (Agreement.Params.make ~n:5 ~m:2 ~k:3))

let diagram_symbols () =
  Alcotest.(check string) "invoke" "I"
    (Diagram.symbol (Event.Invoke { pid = 0; instance = 1; input = vi 0 }));
  Alcotest.(check string) "write" "w3"
    (Diagram.symbol (Event.Did_write { pid = 0; reg = 3; value = vi 0 }));
  Alcotest.(check string) "read" "r0"
    (Diagram.symbol (Event.Did_read { pid = 0; reg = 0; value = vi 0 }));
  Alcotest.(check string) "scan" "s"
    (Diagram.symbol (Event.Did_scan { pid = 0; off = 0; len = 2 }));
  Alcotest.(check string) "output" "O"
    (Diagram.symbol (Event.Output { pid = 0; instance = 1; value = vi 0 }))

let schedule_names () =
  Alcotest.(check string) "round robin" "round-robin" (Schedule.name (Schedule.round_robin 3));
  Alcotest.(check string) "solo" "solo(p2)" (Schedule.name (Schedule.solo 2));
  Alcotest.(check string) "random" "random(seed=9)" (Schedule.name (Schedule.random ~seed:9 3));
  Alcotest.(check string) "quantum" "round-robin/q=5"
    (Schedule.name (Schedule.quantum_round_robin ~quantum:5 3));
  Alcotest.(check string) "crashes suffix" "solo(p0)+crashes"
    (Schedule.name (Schedule.with_crashes ~crashes:[] (Schedule.solo 0)))

(* ---- error paths ---- *)

let error_paths () =
  Alcotest.check_raises "params: m>k"
    (Invalid_argument "Params.make: need m <= k, got m=3 k=2 (unsolvable otherwise)")
    (fun () -> ignore (Agreement.Params.make ~n:5 ~m:3 ~k:2));
  Alcotest.check_raises "baseline n=k+1"
    (Invalid_argument
       "Baseline_dfgr13.program: reconstruction requires n-k >= 2 (n=4 k=3); see module \
        comment") (fun () ->
      ignore
        (Agreement.Baseline_dfgr13.program ~n:4 ~k:3 ~pid:0
           ~api:(Snapshot.Atomic.make ~off:0 ~len:2)));
  let c = Config.create ~registers:1 ~procs:[| Program.stop |] () in
  Alcotest.check_raises "step halted" (Invalid_argument "Config.step: p0 halted")
    (fun () -> ignore (Config.step c 0));
  Alcotest.check_raises "invoke active" (Invalid_argument "Config.invoke: p0 is not idle")
    (fun () -> ignore (Config.invoke c 0 (vi 1)));
  Alcotest.check_raises "bad scheduler quantum"
    (Invalid_argument "Schedule.quantum_round_robin: quantum must be positive")
    (fun () -> ignore (Schedule.quantum_round_robin ~quantum:0 2));
  Alcotest.check_raises "rng bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 0) 0))

let suite =
  [
    test "Value.pp golden" value_pp;
    test "Event.pp golden" event_pp;
    test "Program.pp_op golden" program_op_pp;
    test "Params.pp golden" params_pp;
    test "Diagram symbols" diagram_symbols;
    test "Schedule names" schedule_names;
    test "error paths raise precise messages" error_paths;
  ]
