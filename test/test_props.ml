(* Property-based tests (qcheck) on substrate invariants and the
   paper's safety properties under randomized schedules. *)

open Shm

(* PRNG state derives from SA_TEST_SEED (default fixed): property
   failures are reproducible and the seed is printed on failure *)
let to_alcotest = Helpers.qcheck_to_alcotest

(* ---- generators ---- *)

let value_gen =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        if size <= 1 then
          oneof [ return Value.bot; map (fun i -> Value.int i) small_int ]
        else
          frequency
            [
              (3, map (fun i -> Value.int i) small_int);
              (1, return Value.bot);
              (1, map (fun s -> Value.str s) (string_size (int_bound 4)));
              (2, map2 (fun a b -> Value.pair a b) (self (size / 2)) (self (size / 2)));
              (1, map (fun l -> Value.list l) (list_size (int_bound 3) (self (size / 3))));
            ]))

let value_arb = QCheck.make ~print:Value.to_string value_gen

(* valid (n, m, k) triples with small n *)
let params_gen =
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    int_range 1 (n - 1) >>= fun k ->
    int_range 1 k >>= fun m -> return (Agreement.Params.make ~n ~m ~k))

let params_arb =
  QCheck.make ~print:Agreement.Params.to_string params_gen

(* ---- Value laws ---- *)

let prop_equal_reflexive =
  QCheck.Test.make ~name:"Value.equal is reflexive" ~count:500 value_arb (fun v ->
      Value.equal v v)

let prop_compare_equal_consistent =
  QCheck.Test.make ~name:"Value.compare = 0 iff Value.equal" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0))

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"Value.compare antisymmetric" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      let c = Value.compare a b and c' = Value.compare b a in
      (c > 0 && c' < 0) || (c < 0 && c' > 0) || (c = 0 && c' = 0))

let prop_compare_transitive =
  QCheck.Test.make ~name:"Value.compare transitive" ~count:500
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let le x y = Value.compare x y <= 0 in
      (not (le a b && le b c)) || le a c)

(* Hash-consing invariant: equal values hash equal.  Random pairs are
   almost never equal, so also rebuild a structurally identical copy
   through fresh constructor calls — the pair (v, rebuild v) exercises
   the law on the equal side every time. *)
let rec rebuild v =
  match Value.view v with
  | Value.Bot -> Value.bot
  | Value.Int i -> Value.int i
  | Value.Str s -> Value.str s
  | Value.Pair (a, b) -> Value.pair (rebuild a) (rebuild b)
  | Value.List l -> Value.list (List.map rebuild l)

let prop_hash_agrees_with_equal =
  QCheck.Test.make ~name:"Value.hash agrees with Value.equal" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      let a' = rebuild a in
      Value.equal a a'
      && Value.hash a = Value.hash a'
      && Value.compare a a' = 0
      && ((not (Value.equal a b)) || Value.hash a = Value.hash b))

(* ---- Memory model ---- *)

let prop_memory_model =
  (* a random op sequence agrees with a naive assoc-list model *)
  QCheck.Test.make ~name:"Memory agrees with assoc model" ~count:300
    QCheck.(list (pair (int_bound 7) small_int))
    (fun writes ->
      let mem =
        List.fold_left (fun m (r, v) -> Memory.write m r (Value.int v)) (Memory.create 8)
          writes
      in
      let model r =
        match List.find_opt (fun (r', _) -> r' = r) (List.rev writes) with
        | Some (_, v) -> Value.int v
        | None -> Value.bot
      in
      List.init 8 Fun.id
      |> List.for_all (fun r -> Value.equal (Memory.read mem r) (model r)))

(* ---- View helpers vs naive specs ---- *)

let view_arb =
  QCheck.make
    QCheck.Gen.(
      map Array.of_list
        (list_size (int_range 1 8)
           (oneof [ return Value.bot; map (fun i -> Value.int (i mod 4)) small_int ])))

let prop_distinct_count_spec =
  QCheck.Test.make ~name:"View.distinct_count matches sort-uniq" ~count:500 view_arb
    (fun view ->
      let naive =
        Array.to_list view |> List.sort_uniq Value.compare |> List.length
      in
      Agreement.View.distinct_count view = naive)

let prop_min_duplicate_spec =
  QCheck.Test.make ~name:"View.min_duplicate_index matches naive search" ~count:500
    view_arb (fun view ->
      let n = Array.length view in
      let naive =
        let rec outer j1 =
          if j1 >= n then None
          else if
            List.exists
              (fun j2 -> j2 > j1 && Value.equal view.(j1) view.(j2))
              (List.init n Fun.id)
          then Some j1
          else outer (j1 + 1)
        in
        outer 0
      in
      Agreement.View.min_duplicate_index view = naive)

(* ---- Safety of the algorithms under random schedules ---- *)

let safety_arb = QCheck.pair params_arb (QCheck.make QCheck.Gen.(int_bound 9999))

let prop_oneshot_safety =
  QCheck.Test.make ~name:"one-shot: validity + k-agreement under random schedules"
    ~count:150 safety_arb (fun (p, seed) ->
      let n = p.Agreement.Params.n in
      let result =
        Agreement.Runner.run_oneshot ~sched:(Schedule.random ~seed n) ~max_steps:40_000 p
      in
      match Spec.Properties.check_safety ~k:p.Agreement.Params.k result.Exec.config with
      | Ok () -> true
      | Error _ -> false)

let prop_repeated_safety =
  QCheck.Test.make ~name:"repeated: validity + k-agreement under random schedules"
    ~count:80 safety_arb (fun (p, seed) ->
      let n = p.Agreement.Params.n in
      let result =
        Agreement.Runner.run_repeated ~rounds:3 ~sched:(Schedule.random ~seed n)
          ~max_steps:60_000 p
      in
      match Spec.Properties.check_safety ~k:p.Agreement.Params.k result.Exec.config with
      | Ok () -> true
      | Error _ -> false)

let prop_anonymous_safety =
  QCheck.Test.make ~name:"anonymous: validity + k-agreement under random schedules"
    ~count:40 safety_arb (fun (p, seed) ->
      let n = p.Agreement.Params.n in
      let result =
        Agreement.Runner.run_anonymous ~rounds:2 ~sched:(Schedule.random ~seed n)
          ~max_steps:60_000 p
      in
      match Spec.Properties.check_safety ~k:p.Agreement.Params.k result.Exec.config with
      | Ok () -> true
      | Error _ -> false)

(* ---- m-obstruction-freedom as a property ---- *)

let prop_m_obstruction_freedom =
  QCheck.Test.make
    ~name:"one-shot: m survivors always terminate (m-obstruction-freedom)" ~count:80
    safety_arb (fun (p, seed) ->
      let n = p.Agreement.Params.n and m = p.Agreement.Params.m in
      let sched = Schedule.m_bounded ~seed ~m ~prefix:(20 + (seed mod 40)) n in
      let result = Agreement.Runner.run_oneshot ~sched ~max_steps:200_000 p in
      result.Exec.stopped = Exec.All_quiescent)

(* ---- tuple codec roundtrips ---- *)

let history_gen =
  QCheck.Gen.(list_size (int_bound 4) (map (fun i -> Value.int i) small_int))

let repeated_tuple_arb =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun (pref, id) (t, history) ->
          { Agreement.Repeated.pref = Value.int pref; id; t = t + 1; history })
        (pair small_int (int_bound 15))
        (pair (int_bound 9) history_gen))

let prop_repeated_codec =
  QCheck.Test.make ~name:"Repeated tuple encode/decode roundtrip" ~count:300
    repeated_tuple_arb (fun tu ->
      match Agreement.Repeated.decode (Agreement.Repeated.encode tu) with
      | Some tu' ->
        Value.equal tu.Agreement.Repeated.pref tu'.Agreement.Repeated.pref
        && tu.Agreement.Repeated.id = tu'.Agreement.Repeated.id
        && tu.Agreement.Repeated.t = tu'.Agreement.Repeated.t
        && List.for_all2 Value.equal tu.Agreement.Repeated.history
             tu'.Agreement.Repeated.history
      | None -> false)

let anonymous_tuple_arb =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun pref (t, history) ->
          { Agreement.Anonymous.pref = Value.int pref; t = t + 1; history })
        small_int
        (pair (int_bound 9) history_gen))

let prop_anonymous_codec =
  QCheck.Test.make ~name:"Anonymous tuple encode/decode roundtrip" ~count:300
    anonymous_tuple_arb (fun tu ->
      match Agreement.Anonymous.decode (Agreement.Anonymous.encode tu) with
      | Some tu' ->
        Value.equal tu.Agreement.Anonymous.pref tu'.Agreement.Anonymous.pref
        && tu.Agreement.Anonymous.t = tu'.Agreement.Anonymous.t
        && List.for_all2 Value.equal tu.Agreement.Anonymous.history
             tu'.Agreement.Anonymous.history
      | None -> false)

let prop_bot_decodes_to_none =
  QCheck.Test.make ~name:"⊥ decodes to None in both codecs" ~count:1 QCheck.unit
    (fun () ->
      Agreement.Repeated.decode Value.bot = None
      && Agreement.Anonymous.decode Value.bot = None)

(* ---- the Theorem 2 adversary as a property ---- *)

let small_params_gen =
  QCheck.Gen.(
    int_range 4 6 >>= fun n ->
    int_range 1 (min 3 (n - 1)) >>= fun k ->
    int_range 1 (min 2 k) >>= fun m -> return (Agreement.Params.make ~n ~m ~k))

let prop_starved_always_breaks =
  QCheck.Test.make ~name:"Theorem 2: every starved instance breaks" ~count:25
    (QCheck.make ~print:Agreement.Params.to_string small_params_gen) (fun p ->
      let registers = Agreement.Params.registers_lower p - 1 in
      registers < 1
      ||
      match
        Lowerbound.Theorem2.attack ~params:p ~registers
          ~make_config:(fun ~registers -> Agreement.Instances.repeated ~r:registers p)
          ~icap:3 ()
      with
      | Lowerbound.Theorem2.Violation { config; _ } ->
        Spec.Properties.validity_errors config = []
        && Spec.Properties.agreement_errors ~k:p.Agreement.Params.k config <> []
      | _ -> false)

let prop_correct_always_resists =
  QCheck.Test.make ~name:"Theorem 2: every correct instance resists" ~count:25
    (QCheck.make ~print:Agreement.Params.to_string small_params_gen) (fun p ->
      match
        Lowerbound.Theorem2.attack ~params:p
          ~registers:(Agreement.Params.r_oneshot p)
          ~make_config:(fun ~registers -> Agreement.Instances.repeated ~r:registers p)
          ~icap:3 ()
      with
      | Lowerbound.Theorem2.Out_of_processes _ -> true
      | _ -> false)

(* ---- register budget as a property ---- *)

let prop_register_budget =
  QCheck.Test.make ~name:"one-shot never writes outside n+2m-k components" ~count:100
    safety_arb (fun (p, seed) ->
      let n = p.Agreement.Params.n in
      let result =
        Agreement.Runner.run_oneshot ~sched:(Schedule.random ~seed n) ~max_steps:40_000 p
      in
      Agreement.Runner.registers_used result <= Agreement.Params.r_oneshot p)

let suite =
  List.map to_alcotest
    [
      prop_equal_reflexive;
      prop_compare_equal_consistent;
      prop_compare_antisymmetric;
      prop_compare_transitive;
      prop_hash_agrees_with_equal;
      prop_memory_model;
      prop_distinct_count_spec;
      prop_min_duplicate_spec;
      prop_oneshot_safety;
      prop_repeated_safety;
      prop_anonymous_safety;
      prop_m_obstruction_freedom;
      prop_register_budget;
      prop_repeated_codec;
      prop_anonymous_codec;
      prop_bot_decodes_to_none;
      prop_starved_always_breaks;
      prop_correct_always_resists;
    ]
