(* The serving layer (lib/service): routing, batching, backpressure,
   load generation, chaos verdicts, and seeded replay.

   Most tests use pump mode (domains = 0): the test drives every slot
   itself on one domain, so runs are fully deterministic.  One smoke
   test spins a real 2-domain pool. *)

open Shm
open Helpers

let params = Agreement.Params.make ~n:4 ~m:1 ~k:1

let submit_all server ~key cmds =
  List.map
    (fun cmd ->
      match Service.Server.try_submit server ~key cmd with
      | Some ticket -> ticket
      | None -> Alcotest.fail "submission refused below the window")
    cmds

(* --- routing --- *)

let test_routing_deterministic () =
  for i = 0 to 99 do
    let key = Value.pair (Value.int i) (Value.str "k") in
    let a = Service.Sharding.shard_of_key ~shards:8 key
    and b = Service.Sharding.shard_of_key ~shards:8 key in
    Alcotest.(check int) "same key, same shard" a b;
    Alcotest.(check bool) "in range" true (a >= 0 && a < 8)
  done

let test_routing_spread () =
  let shards = 8 and keys = 1000 in
  let hits = Array.make shards 0 in
  for i = 0 to keys - 1 do
    let s = Service.Sharding.shard_of_int ~shards i in
    hits.(s) <- hits.(s) + 1
  done;
  Array.iteri
    (fun s h ->
      if h < keys / shards / 4 then
        Alcotest.failf "shard %d starved: %d of %d keys" s h keys)
    hits

(* --- batching --- *)

let test_batch_roundtrip () =
  let cmds = List.init 5 (fun i -> Universal.Machines.add i) in
  let b = Service.Batch.encode cmds in
  Alcotest.(check int) "size" 5 (Service.Batch.size b);
  match Service.Batch.decode b with
  | None -> Alcotest.fail "decode failed"
  | Some cmds' ->
    List.iter2 (check_value "command") cmds cmds';
    Alcotest.(check bool) "non-batch" true (Service.Batch.decode (vi 3) = None)

(* Committing B commands through one slot must equal committing them
   one slot at a time: same log, same application state. *)
let test_batch_equals_slot_at_a_time () =
  let run ~batch_max =
    let server =
      Service.Server.create ~batch_max ~window:32 ~app:Service.App.counter
        ~shards:1 ~domains:0 params
    in
    let cmds = List.init 24 (fun i -> Universal.Machines.add (i + 1)) in
    let _tickets = submit_all server ~key:(vi 7) cmds in
    Service.Server.drain server;
    let shard = Service.Server.shard server 0 in
    (Service.Shard.log shard, Service.Shard.app_state shard,
     (Service.Shard.stats shard).Service.Shard.slots)
  in
  let log_b, state_b, slots_b = run ~batch_max:8 in
  let log_1, state_1, slots_1 = run ~batch_max:1 in
  Alcotest.(check int) "batched commits in fewer slots" 3 slots_b;
  Alcotest.(check int) "slot-at-a-time uses one slot per command" 24 slots_1;
  check_value "same final state" state_1 state_b;
  Alcotest.(check int) "same log length" (List.length log_1) (List.length log_b);
  List.iter2 (check_value "same log") log_1 log_b;
  check_value "counter total" (vi 300) state_b

(* The same equivalence against the existing batch-replication path:
   Rsm.replicate with one command per slot reaches the same state. *)
let test_batch_equals_replicate () =
  let cmds = Array.init 10 (fun i -> Universal.Machines.add (i + 1)) in
  let machine =
    { Universal.Rsm.init = 0;
      apply = (fun s c ->
          match Universal.Machines.tagged c with
          | Some ("add", x) -> s + Value.to_int x
          | _ -> s);
    }
  in
  let run =
    Universal.Rsm.replicate params machine
      ~commands:(fun _ slot -> cmds.(slot - 1))
      ~slots:10
  in
  Alcotest.(check bool) "replicate quiesced" true run.Universal.Rsm.quiescent;
  let server =
    Service.Server.create ~batch_max:10 ~window:16 ~app:Service.App.counter
      ~shards:1 ~domains:0 params
  in
  let _ = submit_all server ~key:(vi 0) (Array.to_list cmds) in
  Service.Server.drain server;
  let state = Service.Shard.app_state (Service.Server.shard server 0) in
  let expected =
    match Universal.Rsm.agreement_log run with
    | Some log -> List.fold_left machine.Universal.Rsm.apply 0 log
    | None -> Alcotest.fail "consensus replicas diverged"
  in
  check_value "service state = replicate state" (vi expected) state

(* --- backpressure --- *)

let test_backpressure_window () =
  let server =
    Service.Server.create ~batch_max:4 ~window:8 ~app:Service.App.counter
      ~shards:1 ~domains:0 params
  in
  let key = vi 1 in
  let cmd = Universal.Machines.add 1 in
  let _admitted = submit_all server ~key (List.init 8 (fun _ -> cmd)) in
  Alcotest.(check bool) "9th refused at window 8" true
    (Service.Server.try_submit server ~key cmd = None);
  ignore (Service.Server.pump server);
  (* one slot committed batch_max = 4 commands: room again, and never
     more than [window] in flight *)
  Alcotest.(check int) "4 still pending" 4
    (Service.Shard.pending (Service.Server.shard server 0));
  Alcotest.(check bool) "admits again after the slot" true
    (Service.Server.try_submit server ~key cmd <> None);
  Service.Server.drain server;
  Alcotest.(check int) "all drained" 0
    (Service.Shard.pending (Service.Server.shard server 0))

(* --- Zipf --- *)

let test_zipf_pmf () =
  let pmf = Service.Loadgen.Zipf.pmf ~keys:64 ~theta:0.0 in
  let sum = Array.fold_left ( +. ) 0.0 pmf in
  Alcotest.(check bool) "sums to 1" true (abs_float (sum -. 1.0) < 1e-9);
  Array.iter
    (fun p -> Alcotest.(check bool) "uniform at theta 0" true (abs_float (p -. (1.0 /. 64.0)) < 1e-9))
    pmf

let test_zipf_skew seed =
  let keys = 50 in
  let z = Service.Loadgen.Zipf.create ~keys ~theta:1.1 ~seed in
  let hits = Array.make keys 0 in
  for _ = 1 to 20_000 do
    let i = Service.Loadgen.Zipf.sample z in
    hits.(i) <- hits.(i) + 1
  done;
  Alcotest.(check bool) "head is hot" true (hits.(0) > 3 * max 1 hits.(20));
  Alcotest.(check bool) "head above uniform" true (hits.(0) > 20_000 / keys);
  (* determinism: same seed, same draws *)
  let a = Service.Loadgen.Zipf.create ~keys ~theta:1.1 ~seed
  and b = Service.Loadgen.Zipf.create ~keys ~theta:1.1 ~seed in
  for _ = 1 to 100 do
    Alcotest.(check int) "deterministic" (Service.Loadgen.Zipf.sample a)
      (Service.Loadgen.Zipf.sample b)
  done

(* --- crash chaos + conform verdict --- *)

let test_crash_chaos_verdict seed =
  let shards = 2 in
  let server =
    Service.Server.create ~batch_max:4 ~window:16 ~app:Service.App.register
      ~seed ~shards ~domains:0 params
  in
  let rng = Rng.create seed in
  let submit_round round =
    for client = 0 to 7 do
      let key = vi client in
      let cmd =
        if Rng.bool rng then Service.App.read
        else Universal.Machines.write (Value.pair (vi client) (vi round))
      in
      ignore (Service.Server.try_submit server ~key ~tag:client cmd)
    done
  in
  for round = 1 to 24 do
    submit_round round;
    ignore (Service.Server.pump server);
    if round = 8 then
      Alcotest.(check bool) "crash shard 0 pid 1" true
        (Service.Server.crash_replica server ~shard:0 ~pid:1);
    if round = 16 then begin
      ignore (Service.Server.crash_replica server ~shard:0 ~pid:3);
      ignore (Service.Server.crash_replica server ~shard:1 ~pid:0)
    end
  done;
  Service.Server.drain server;
  (match Service.Server.verdict server with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "verdict: %s" (String.concat "; " errs));
  (* the space bill never grows with load: min(n+2m−k, n) per shard *)
  let bound =
    let p = params in
    min (p.Agreement.Params.n + (2 * p.Agreement.Params.m) - p.Agreement.Params.k)
      p.Agreement.Params.n
  in
  List.iter
    (fun (s : Service.Shard.stats) ->
      if s.Service.Shard.registers > bound then
        Alcotest.failf "shard %d wrote %d registers > bound %d" s.Service.Shard.shard
          s.Service.Shard.registers bound;
      Alcotest.(check bool) "served commands" true (s.Service.Shard.committed > 0))
    (Service.Server.stats server)

(* --- seeded replay --- *)

let test_seeded_replay seed =
  let run () =
    let server =
      Service.Server.create ~batch_max:8 ~window:32 ~app:Service.App.register
        ~seed ~shards:3 ~domains:0 params
    in
    let report =
      Service.Loadgen.run server
        { Service.Loadgen.clients = 12; ops_per_client = 5; keys = 40;
          theta = 0.9; seed }
    in
    let logs =
      List.init 3 (fun i -> Service.Shard.log (Service.Server.shard server i))
    in
    let states =
      List.init 3 (fun i -> Service.Shard.app_state (Service.Server.shard server i))
    in
    (report.Service.Loadgen.ops, logs, states)
  in
  let ops_a, logs_a, states_a = run () in
  let ops_b, logs_b, states_b = run () in
  Alcotest.(check int) "all ops committed" (12 * 5) ops_a;
  Alcotest.(check int) "same ops" ops_a ops_b;
  List.iter2
    (fun la lb ->
      Alcotest.(check int) "same log length" (List.length la) (List.length lb);
      List.iter2 (check_value "same log") la lb)
    logs_a logs_b;
  List.iter2 (check_value "same state") states_a states_b

(* --- multicore pool smoke --- *)

let test_pool_smoke seed =
  let server =
    Service.Server.create ~batch_max:8 ~window:32 ~app:Service.App.register
      ~seed ~shards:4 ~domains:2 params
  in
  let report =
    Service.Loadgen.run server
      { Service.Loadgen.clients = 16; ops_per_client = 4; keys = 64;
        theta = 0.8; seed }
  in
  Service.Server.stop server;
  Alcotest.(check int) "all ops committed" (16 * 4) report.Service.Loadgen.ops;
  Alcotest.(check bool) "made progress" true
    (report.Service.Loadgen.throughput_cps > 0.0);
  match Service.Server.verdict server with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "verdict: %s" (String.concat "; " errs)

(* --- history adapter --- *)

let test_rsm_history_adapter () =
  let w v start finish =
    { Conform.Rsm_history.cmd = Universal.Machines.write (vi v); reply = Value.bot;
      start; finish }
  and r v start finish =
    { Conform.Rsm_history.cmd = Service.App.read; reply = vi v; start; finish }
  in
  (match Conform.Rsm_history.check_register [ w 1 0 10; r 1 20 30 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "legal history rejected: %s" e);
  (match Conform.Rsm_history.check_register [ w 1 0 10; r 2 20 30 ] with
  | Ok () -> Alcotest.fail "stale read accepted"
  | Error _ -> ());
  match
    Conform.Rsm_history.check_register
      [ { Conform.Rsm_history.cmd = Universal.Machines.add 1; reply = Value.bot;
          start = 0; finish = 1 } ]
  with
  | Ok () -> Alcotest.fail "non-register command accepted"
  | Error _ -> ()

(* --- BENCH history discipline for the service experiment --- *)

let test_history_schema_discipline () =
  let row =
    Obs.Json.Obj
      [ ("bench", Obs.Json.String "service-throughput");
        ("arm", Obs.Json.String "batched");
        ("ratio_vs_reference", Obs.Json.Float 3.0) ]
  in
  let entry = Obs.History.make ~experiment:"service" [ row ] in
  (match Obs.History.entry_of_json (Obs.History.json_of_entry entry) with
  | Ok e ->
    Alcotest.(check string) "experiment survives" "service" e.Obs.History.experiment;
    Alcotest.(check int) "schema pinned" Obs.History.schema_version e.Obs.History.schema
  | Error e -> Alcotest.failf "roundtrip: %s" e);
  let future =
    Obs.History.json_of_entry { entry with Obs.History.schema = Obs.History.schema_version + 1 }
  in
  match Obs.History.entry_of_json future with
  | Ok _ -> Alcotest.fail "future major schema accepted"
  | Error _ -> ()

let suite =
  [
    test "routing is deterministic" test_routing_deterministic;
    test "routing spreads keys" test_routing_spread;
    test "batch encode/decode roundtrip" test_batch_roundtrip;
    test "batch-decide ≡ slot-at-a-time" test_batch_equals_slot_at_a_time;
    test "service state ≡ Rsm.replicate state" test_batch_equals_replicate;
    test "backpressure bounds the window" test_backpressure_window;
    test "zipf pmf normalizes; theta 0 uniform" test_zipf_pmf;
    seeded_test "zipf skew + determinism" test_zipf_skew;
    seeded_test "crash chaos passes conform verdict" test_crash_chaos_verdict;
    seeded_test "seeded load runs replay identically" test_seeded_replay;
    seeded_test "2-domain pool serves and verifies" test_pool_smoke;
    test "rsm history adapter grades registers" test_rsm_history_adapter;
    test "service history entries keep schema discipline" test_history_schema_discipline;
  ]
