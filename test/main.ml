let () =
  Alcotest.run "set_agreement"
    [
      ("shm", Test_shm.suite);
      ("backend", Test_backend.suite);
      ("pp", Test_pp.suite);
      ("exec", Test_exec.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("bounds", Test_bounds.suite);
      ("oneshot", Test_oneshot.suite);
      ("repeated", Test_repeated.suite);
      ("anonymous", Test_anonymous.suite);
      ("baseline", Test_baseline.suite);
      ("snapshot", Test_snapshot.suite);
      ("snapshot-units", Test_snapshot_units.suite);
      ("linearize", Test_linearize.suite);
      ("theorem2", Test_theorem2.suite);
      ("theorem2-more", Test_theorem2_more.suite);
      ("clones", Test_clones.suite);
      ("lemma1", Test_lemma1.suite);
      ("lemma9", Test_lemma9.suite);
      ("alpha", Test_alpha.suite);
      ("invariants", Test_invariants.suite);
      ("universal", Test_universal.suite);
      ("service", Test_service.suite);
      ("faults", Test_faults.suite);
      ("anonymity", Test_anonymity.suite);
      ("errata", Test_errata.suite);
      ("complexity", Test_complexity.suite);
      ("scale", Test_scale.suite);
      ("native", Test_native.suite);
      ("conform", Test_conform.suite);
      ("stress", Test_stress.suite);
      ("explore", Test_explore.suite);
      ("analyze", Test_analyze.suite);
      ("properties", Test_props.suite);
    ]
