(* Tests for the observability layer (lib/obs) and the Analysis edge
   cases it subsumes: streaming sinks vs recorded traces, metrics
   histograms, per-propose spans, and the JSONL export round-trip. *)

open Helpers
open Shm

let analysis_eq a b =
  a.Analysis.steps_per_process = b.Analysis.steps_per_process
  && a.Analysis.writes_per_register = b.Analysis.writes_per_register
  && a.Analysis.reads_per_register = b.Analysis.reads_per_register
  && a.Analysis.invocations = b.Analysis.invocations
  && a.Analysis.outputs = b.Analysis.outputs
  && a.Analysis.total_steps = b.Analysis.total_steps

(* ---- Analysis edge cases ---- *)

let analysis_empty_trace () =
  let a = Analysis.of_trace ~n:3 ~registers:2 [] in
  Alcotest.(check int) "no steps" 0 a.Analysis.total_steps;
  Alcotest.(check int) "no invocations" 0 a.Analysis.invocations;
  Alcotest.(check (list int)) "nobody active" [] (Analysis.active_processes a);
  Alcotest.(check (float 0.)) "skew defined" 0. (Analysis.write_skew a)

let analysis_zero_registers () =
  (* registers = 0: events mentioning registers are counted in totals
     but not attributed; no out-of-bounds access, no NaN *)
  let trace =
    [
      Event.Invoke { pid = 0; instance = 1; input = vi 1 };
      Event.Did_scan { pid = 0; off = 0; len = 3 };
      Event.Did_write { pid = 0; reg = 1; value = vi 9 };
      Event.Output { pid = 0; instance = 1; value = vi 1 };
    ]
  in
  let a = Analysis.of_trace ~n:1 ~registers:0 trace in
  Alcotest.(check int) "total steps" 4 a.Analysis.total_steps;
  Alcotest.(check int) "writes array empty" 0 (Array.length a.Analysis.writes_per_register);
  Alcotest.(check (float 0.)) "skew 0, not NaN" 0. (Analysis.write_skew a)

let analysis_write_skew_no_writes () =
  let trace = [ Event.Did_read { pid = 0; reg = 0; value = Value.bot } ] in
  let a = Analysis.of_trace ~n:1 ~registers:2 trace in
  let skew = Analysis.write_skew a in
  Alcotest.(check bool) "not NaN" false (Float.is_nan skew);
  Alcotest.(check (float 0.)) "zero by convention" 0. skew

let analysis_scan_clipped () =
  (* a scan overrunning the register file only credits real registers *)
  let trace = [ Event.Did_scan { pid = 0; off = 1; len = 10 } ] in
  let a = Analysis.of_trace ~n:1 ~registers:3 trace in
  Alcotest.(check (array int)) "clipped coverage" [| 0; 1; 1 |]
    a.Analysis.reads_per_register

(* ---- Sinks ---- *)

let counter ~reg ~ops =
  Program.await (fun _ ->
      let rec go left last =
        if left = 0 then Program.yield last Program.stop
        else
          Program.read reg (fun v ->
              let x = match Value.view v with Value.Int i -> i | _ -> 0 in
              Program.write reg (vi (x + 1)) (fun () -> go (left - 1) (vi (x + 1))))
      in
      go ops Value.bot)

let run_counters ?record ?sink ~n ~ops () =
  let procs = Array.init n (fun pid -> counter ~reg:pid ~ops) in
  let config = Config.create ~registers:n ~procs () in
  Exec.run ?record ?sink ~sched:(Schedule.round_robin n)
    ~inputs:(Exec.oneshot_inputs (Array.make n (vi 0)))
    ~max_steps:100_000 config

let sink_sees_recorded_trace () =
  let recorder, events = Obs.Sink.recorder () in
  let res = run_counters ~record:true ~sink:recorder ~n:3 ~ops:5 () in
  Alcotest.(check int) "same length" (List.length res.Exec.trace)
    (List.length (events ()));
  Alcotest.(check bool) "same events in order" true
    (List.for_all2 (fun a b -> a = b) res.Exec.trace (events ()))

let sink_tee_and_filter () =
  let c_all, n_all = Obs.Sink.counter () in
  let c_p0, n_p0 = Obs.Sink.counter () in
  let c_writes, n_writes = Obs.Sink.counter () in
  let is_write = function Event.Did_write _ -> true | _ -> false in
  let sink =
    Obs.Sink.tee
      [ c_all; Obs.Sink.on_pid 0 c_p0; Obs.Sink.filter is_write c_writes ]
  in
  let res = run_counters ~sink ~n:2 ~ops:3 () in
  Alcotest.(check int) "tee sees every step" res.Exec.steps (n_all ());
  (* each process: invoke + 3*(read+write) + output = 8 steps, 3 writes *)
  Alcotest.(check int) "pid filter" 8 (n_p0 ());
  Alcotest.(check int) "event filter" 6 (n_writes ())

let stats_sink_matches_analysis () =
  let n = 3 and ops = 4 in
  let stats = Obs.Stats.create ~n ~registers:n () in
  let res = run_counters ~record:true ~sink:(Obs.Stats.sink stats) ~n ~ops () in
  let live = Obs.Stats.to_analysis stats in
  let replayed = Analysis.of_trace ~n ~registers:n res.Exec.trace in
  Alcotest.(check bool) "streaming = batch" true (analysis_eq live replayed);
  Alcotest.(check int) "decision counter = steps" res.Exec.steps
    (Obs.Stats.total_steps stats);
  Alcotest.(check bool) "heat covers every register" true
    (Array.for_all (fun h -> h > 0) (Obs.Stats.register_heat stats))

(* ---- Metrics ---- *)

let histogram_quantiles () =
  let h = Obs.Metrics.Histogram.create () in
  Alcotest.(check (float 0.)) "empty p50" 0. (Obs.Metrics.Histogram.p50 h);
  for v = 1 to 1000 do
    Obs.Metrics.Histogram.observe h v
  done;
  Alcotest.(check int) "count" 1000 (Obs.Metrics.Histogram.count h);
  Alcotest.(check int) "min" 1 (Obs.Metrics.Histogram.min_value h);
  Alcotest.(check int) "max" 1000 (Obs.Metrics.Histogram.max_value h);
  let p50 = Obs.Metrics.Histogram.p50 h in
  let p90 = Obs.Metrics.Histogram.p90 h in
  let p99 = Obs.Metrics.Histogram.p99 h in
  (* log buckets: estimates correct to within one octave *)
  Alcotest.(check bool) "p50 in octave" true (p50 >= 250. && p50 <= 1000.);
  Alcotest.(check bool) "p99 near max" true (p99 >= 500. && p99 <= 1000.);
  Alcotest.(check bool) "monotone" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check (float 1e-9)) "mean exact" 500.5 (Obs.Metrics.Histogram.mean h)

(* Pin the quantile semantics across the allocation-free rewrite of
   the record paths: a fixed multi-octave dataset must report exactly
   the same percentiles as the original implementation. *)
let histogram_percentiles_pinned () =
  let h = Obs.Metrics.Histogram.create () in
  List.iter
    (Obs.Metrics.Histogram.observe h)
    [ 0; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 1000; 100_000 ];
  Alcotest.(check int) "count" 14 (Obs.Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 101_375 (Obs.Metrics.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "p50" 24. (Obs.Metrics.Histogram.p50 h);
  Alcotest.(check (float 1e-9)) "p90" 768. (Obs.Metrics.Histogram.p90 h);
  Alcotest.(check (float 1e-9)) "p99" 98304. (Obs.Metrics.Histogram.p99 h);
  Alcotest.(check (float 1e-9)) "quantile 0" 0.5 (Obs.Metrics.Histogram.quantile h 0.);
  Alcotest.(check (float 1e-9)) "quantile 1" 98304.
    (Obs.Metrics.Histogram.quantile h 1.)

(* The record paths must not allocate: observe/add/incr on existing
   metrics, and registry lookup of an existing name.  Minor-heap words
   are counted around a 100k-iteration loop; any per-record allocation
   would show up as >= 200k words, so a small constant slack separates
   cleanly. *)
let record_paths_allocation_free () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "hot.counter" in
  let h = Obs.Metrics.histogram r "hot.histogram" in
  let iters = 100_000 in
  let measure name f =
    f 0;
    (* warm up *)
    let before = Gc.minor_words () in
    for i = 1 to iters do
      f i
    done;
    let words = Gc.minor_words () -. before in
    Alcotest.(check bool)
      (Fmt.str "%s allocates (%.0f minor words / %d calls)" name words iters)
      true (words < 1000.)
  in
  measure "Counter.incr" (fun _ -> Obs.Metrics.Counter.incr c);
  measure "Counter.add" (fun i -> Obs.Metrics.Counter.add c i);
  measure "Histogram.observe" (fun i -> Obs.Metrics.Histogram.observe h i);
  measure "registry counter lookup" (fun _ ->
      Obs.Metrics.Counter.incr (Obs.Metrics.counter r "hot.counter"));
  measure "registry histogram lookup" (fun i ->
      Obs.Metrics.Histogram.observe (Obs.Metrics.histogram r "hot.histogram") i)

let registry_get_or_create () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "steps" in
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.incr ~by:2 (Obs.Metrics.counter r "steps");
  Alcotest.(check int) "same counter" 3
    (Obs.Metrics.Counter.value (Obs.Metrics.counter r "steps"));
  Alcotest.(check (list string)) "registration order" [ "steps" ] (Obs.Metrics.names r);
  Alcotest.check_raises "kind clash" (Invalid_argument "Metrics.gauge: \"steps\" is not a gauge")
    (fun () -> ignore (Obs.Metrics.gauge r "steps"))

(* ---- Spans ---- *)

let spans_track_proposes () =
  let n = 4 in
  let p = Agreement.Params.make ~n ~m:1 ~k:2 in
  let span = Obs.Span.create () in
  let res = Agreement.Runner.run_oneshot ~sink:(Obs.Span.sink span) p in
  let outs = List.length (Config.outputs res.Exec.config) in
  Alcotest.(check int) "one span per decided propose" outs
    (Obs.Span.completed_count span);
  Alcotest.(check int) "nothing left open" 0 (Obs.Span.open_count span);
  List.iter
    (fun s ->
      Alcotest.(check bool) "positive latency" true (Obs.Span.latency s > 0);
      Alcotest.(check bool) "within run" true
        (s.Obs.Span.start_step >= 0 && s.Obs.Span.end_step <= res.Exec.steps))
    (Obs.Span.completed span);
  Alcotest.(check bool) "p50 <= p99" true (Obs.Span.p50 span <= Obs.Span.p99 span)

let spans_leave_starved_open () =
  (* solo schedule: only p1 decides, the other invocations never start *)
  let n = 3 in
  let p = Agreement.Params.make ~n ~m:1 ~k:2 in
  let span = Obs.Span.create () in
  let res =
    Agreement.Runner.run_oneshot ~sched:(Schedule.solo 1) ~sink:(Obs.Span.sink span) p
  in
  ignore res;
  Alcotest.(check int) "one completed" 1 (Obs.Span.completed_count span);
  Alcotest.(check int) "no phantom opens" 0 (Obs.Span.open_count span)

(* ---- Json / Jsonl ---- *)

let sample_values =
  [
    Value.bot;
    vi 0;
    vi (-42);
    Value.str "plain";
    Value.str "esc \"quotes\" \\ and\nnewline\ttab";
    Value.pair (vi 1) (vi 2);
    Value.pair Value.bot (Value.str "x");
    Value.list [];
    Value.list [ vi 1; vi 2 ];
    Value.list [ Value.pair (vi 1) (Value.list [ Value.bot ]); Value.str "" ];
  ]

let value_json_roundtrip () =
  List.iter
    (fun v ->
      match Obs.Jsonl.value_of_json (Obs.Jsonl.json_of_value v) with
      | Ok v' -> check_value (Value.to_string v) v v'
      | Error e -> Alcotest.failf "decode %s: %s" (Value.to_string v) e)
    sample_values;
  (* a pair is not a 2-element list after the round trip *)
  let p = Value.pair (vi 1) (vi 2) and l = Value.list [ vi 1; vi 2 ] in
  let rt v = Result.get_ok (Obs.Jsonl.value_of_json (Obs.Jsonl.json_of_value v)) in
  Alcotest.(check bool) "pair/list distinct" false (Value.equal (rt p) (rt l))

let event_line_roundtrip () =
  let events =
    [
      Event.Invoke { pid = 0; instance = 1; input = Value.pair (vi 1) Value.bot };
      Event.Did_read { pid = 1; reg = 3; value = Value.bot };
      Event.Did_write { pid = 2; reg = 0; value = Value.list [ vi 7; Value.str "s" ] };
      Event.Did_scan { pid = 3; off = 2; len = 5 };
      Event.Output { pid = 4; instance = 2; value = vi 9 };
    ]
  in
  List.iter
    (fun ev ->
      let line = Obs.Jsonl.line_of_event ev in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Obs.Jsonl.event_of_line line with
      | Ok ev' -> Alcotest.(check bool) (Fmt.str "%a" Event.pp ev) true (ev = ev')
      | Error e -> Alcotest.failf "decode %S: %s" line e)
    events

let jsonl_rejects_garbage () =
  (match Obs.Jsonl.event_of_line "{\"ev\":\"warp\",\"pid\":0}" with
  | Ok _ -> Alcotest.fail "accepted unknown event"
  | Error _ -> ());
  (match Obs.Jsonl.event_of_line "not json at all" with
  | Ok _ -> Alcotest.fail "accepted non-JSON"
  | Error _ -> ());
  match Obs.Json.of_string "{\"a\":1} trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing input"
  | Error _ -> ()

(* The acceptance-criterion round trip: stream a run to a JSONL file
   via the sink, reload it, and check the reloaded trace reproduces the
   live run's aggregate statistics exactly. *)
let jsonl_file_roundtrip_analysis () =
  let n = 4 in
  let p = Agreement.Params.make ~n ~m:1 ~k:2 in
  let registers = Agreement.Params.r_oneshot p in
  let path = Filename.temp_file "sa_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let stats = Obs.Stats.create ~n ~registers () in
      let res =
        Agreement.Runner.run_oneshot ~record:true
          ~sink:(Obs.Sink.tee [ Obs.Jsonl.sink_to_channel oc; Obs.Stats.sink stats ])
          ~sched:(Schedule.random ~seed:5 n) p
      in
      close_out oc;
      match Obs.Jsonl.load path with
      | Error e -> Alcotest.failf "reload: %s" e
      | Ok trace ->
        Alcotest.(check int) "every event exported" res.Exec.steps (List.length trace);
        Alcotest.(check bool) "identical trace" true (trace = res.Exec.trace);
        let live = Obs.Stats.to_analysis stats in
        let reloaded = Analysis.of_trace ~n ~registers trace in
        Alcotest.(check bool) "aggregates reproduced" true (analysis_eq live reloaded);
        (* and the streaming fold agrees with the materializing reader *)
        let folded =
          Obs.Jsonl.fold_file path ~init:(Analysis.create ~n ~registers)
            ~f:(fun acc ev ->
              Analysis.feed acc ev;
              acc)
          |> Result.get_ok |> Analysis.snapshot
        in
        Alcotest.(check bool) "fold_file agrees" true (analysis_eq folded reloaded))

(* Scale round-trip: a synthetic 10k-event trace with every event
   shape and awkward values survives save/load byte-for-byte. *)
let jsonl_10k_roundtrip () =
  let mk i =
    let pid = i mod 7 in
    match i mod 5 with
    | 0 -> Event.Invoke { pid; instance = i / 5; input = Value.pair (vi i) Value.bot }
    | 1 -> Event.Did_read { pid; reg = i mod 11; value = vi (-i) }
    | 2 ->
      Event.Did_write
        { pid; reg = i mod 11; value = Value.list [ vi i; Value.str (string_of_int i) ] }
    | 3 -> Event.Did_scan { pid; off = i mod 3; len = i mod 13 }
    | _ -> Event.Output { pid; instance = i / 5; value = Value.str "s \"q\" \\ \n\t" }
  in
  let trace = List.init 10_000 mk in
  let path = Filename.temp_file "sa_10k" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Jsonl.save path trace;
      match Obs.Jsonl.load path with
      | Error e -> Alcotest.failf "reload: %s" e
      | Ok trace' ->
        Alcotest.(check int) "10k events back" 10_000 (List.length trace');
        Alcotest.(check bool) "identical trace" true (trace = trace');
        (* and the streaming fold visits the same events in order *)
        let arr = Array.of_list trace in
        let n =
          Obs.Jsonl.fold_file path ~init:0 ~f:(fun acc ev ->
              assert (ev = arr.(acc));
              acc + 1)
          |> Result.get_ok
        in
        Alcotest.(check int) "fold_file count" 10_000 n)

let bench_out_format () =
  let doc =
    Obs.Bench_out.document ~experiment:"probe"
      [ Obs.Json.Obj [ ("n", Obs.Json.Int 4); ("p50", Obs.Json.Float 12.5) ] ]
  in
  match Obs.Json.of_string (Obs.Json.to_pretty_string doc) with
  | Error e -> Alcotest.failf "pretty output unparseable: %s" e
  | Ok parsed ->
    Alcotest.(check bool) "pretty/compact agree" true (parsed = doc);
    Alcotest.(check (option int)) "schema tagged" (Some Obs.Bench_out.schema_version)
      (Option.bind (Obs.Json.member "schema" parsed) Obs.Json.to_int_opt)

(* ---- JSON escaping: arbitrary byte strings round-trip ---- *)

(* The encoder must emit valid JSON for any byte string — control
   characters escaped, valid UTF-8 passed through, invalid bytes mapped
   to lone surrogates — and the decoder must invert it exactly. *)
let json_string_roundtrip_qcheck =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x0B5 |])
    (QCheck.Test.make ~name:"Json string encode/decode on arbitrary bytes"
       ~count:2000
       QCheck.(string_gen_of_size Gen.(0 -- 64) Gen.(map Char.chr (0 -- 255)))
       (fun s ->
         match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.String s)) with
         | Ok (Obs.Json.String s') -> s' = s
         | Ok _ | Error _ -> false))

let json_escaping_edge_cases () =
  let rt s =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.String s)) with
    | Ok (Obs.Json.String s') -> s'
    | Ok _ -> Alcotest.failf "%S decoded to a non-string" s
    | Error e -> Alcotest.failf "%S: %s" s e
  in
  List.iter
    (fun s -> Alcotest.(check string) (Fmt.str "%S" s) s (rt s))
    [
      "";
      "plain ascii";
      "\x00\x01\x1f\x7f";                   (* control chars *)
      "tab\tnewline\nquote\"backslash\\";
      "caf\xc3\xa9";                        (* valid 2-byte UTF-8 *)
      "\xe2\x86\x92";                       (* 3-byte: RIGHTWARDS ARROW *)
      "\xf0\x9f\x90\xab";                   (* 4-byte: emoji, needs surrogate pair *)
      "\xff\xfe lone invalid bytes";        (* not UTF-8 at all *)
      "\xc3truncated";                      (* truncated sequence *)
      "\xed\xa0\x80";                       (* encoded surrogate = invalid UTF-8 *)
    ];
  (* encoded form is pure ASCII-safe JSON: every control byte escaped *)
  let enc = Obs.Json.to_string (Obs.Json.String "\x00\x07\n\x1b\xff") in
  String.iter
    (fun c ->
      Alcotest.(check bool) "no raw control bytes in output" true (Char.code c >= 0x20))
    enc

(* ---- schema versioning ---- *)

let bench_out_reader () =
  let rows = [ Obs.Json.Obj [ ("n", Obs.Json.Int 4); ("r", Obs.Json.Float 5.5) ] ] in
  let path = Filename.temp_file "sa_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Bench_out.write ~experiment:"probe" ~path rows;
      (match Obs.Bench_out.read path with
      | Error e -> Alcotest.failf "read back: %s" e
      | Ok doc ->
        Alcotest.(check string) "experiment" "probe" doc.Obs.Bench_out.experiment;
        Alcotest.(check int) "schema" Obs.Bench_out.schema_version doc.Obs.Bench_out.schema;
        Alcotest.(check bool) "rows" true (doc.Obs.Bench_out.rows = rows));
      (* a newer major is rejected *)
      let doc = Obs.Bench_out.document ~experiment:"probe" rows in
      let bumped =
        match doc with
        | Obs.Json.Obj fields ->
          Obs.Json.Obj
            (List.map
               (fun (k, v) -> if k = "schema" then (k, Obs.Json.Int 99) else (k, v))
               fields)
        | j -> j
      in
      match Obs.Bench_out.of_json bumped with
      | Ok _ -> Alcotest.fail "accepted schema 99"
      | Error e -> Alcotest.(check bool) "rejected with reason" true (e <> ""))

let jsonl_header_versioned () =
  let path = Filename.temp_file "sa_hdr" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ev = Event.Did_write { pid = 0; reg = 1; value = vi 7 } in
      Obs.Jsonl.save path [ ev ];
      (* the first line is the version header *)
      let ic = open_in path in
      let first = input_line ic in
      close_in ic;
      (match Obs.Json.of_string first with
      | Ok j ->
        Alcotest.(check (option int)) "header schema" (Some Obs.Jsonl.schema_version)
          (Option.bind (Obs.Json.member "schema" j) Obs.Json.to_int_opt)
      | Error e -> Alcotest.failf "header unparseable: %s" e);
      Alcotest.(check bool) "reloads" true (Obs.Jsonl.load path = Ok [ ev ]);
      (* a newer major is rejected *)
      let oc = open_out path in
      output_string oc "{\"jsonl\":\"sa-events\",\"schema\":99}\n";
      output_string oc (Obs.Jsonl.line_of_event ev);
      output_char oc '\n';
      close_out oc;
      (match Obs.Jsonl.load path with
      | Ok _ -> Alcotest.fail "accepted schema 99"
      | Error e -> Alcotest.(check bool) "rejected with reason" true (e <> ""));
      (* legacy headerless files still load (pre-versioning traces) *)
      let oc = open_out path in
      output_string oc (Obs.Jsonl.line_of_event ev);
      output_char oc '\n';
      close_out oc;
      Alcotest.(check bool) "legacy headerless accepted" true
        (Obs.Jsonl.load path = Ok [ ev ]))

(* ---- bench history ---- *)

let history_entry ?(kind = "run") ?(rev = "abc1234") rows =
  Obs.History.make ~ts:1000. ~rev ~kind ~experiment:"perf" rows

let perf_row ~arm ~ratio =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String "sim-steps");
      ("arm", Obs.Json.String arm);
      ("steps", Obs.Json.Int 100);
      ("ratio_vs_reference", Obs.Json.Float ratio);
    ]

let history_roundtrip_and_diff () =
  let path = Filename.temp_file "sa_hist" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let base = history_entry ~rev:"base111" [ perf_row ~arm:"new" ~ratio:10. ] in
      let cur = history_entry ~rev:"cur2222" [ perf_row ~arm:"new" ~ratio:5. ] in
      Obs.History.append ~path base;
      Obs.History.append ~path cur;
      (match Obs.History.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok [ b; c ] ->
        Alcotest.(check string) "rev" "base111" b.Obs.History.rev;
        Alcotest.(check bool) "rows back" true (c.Obs.History.rows = cur.Obs.History.rows);
        let deltas = Obs.History.diff b c in
        let d =
          match
            List.find_opt
              (fun (d : Obs.History.delta) ->
                d.Obs.History.d_metric = "ratio_vs_reference")
              deltas
          with
          | Some d -> d
          | None -> Alcotest.fail "ratio delta missing"
        in
        Alcotest.(check (float 1e-9)) "base" 10. d.Obs.History.base;
        Alcotest.(check (float 1e-9)) "cur" 5. d.Obs.History.cur;
        Alcotest.(check (float 1e-6)) "pct" (-50.) (Obs.History.delta_pct d)
      | Ok l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
      (* a newer major is rejected on load *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc
        "{\"schema\":99,\"ts\":0,\"rev\":\"x\",\"experiment\":\"perf\",\"kind\":\"run\",\"smoke\":false,\"rows\":[]}\n";
      close_out oc;
      match Obs.History.load path with
      | Ok _ -> Alcotest.fail "accepted schema 99"
      | Error e -> Alcotest.(check bool) "rejected with reason" true (e <> ""))

let history_floors_gate () =
  let floors =
    [
      {
        Obs.History.selector = [ ("bench", "sim-steps"); ("arm", "new") ];
        metric = "ratio_vs_reference";
        min = 5.0;
      };
    ]
  in
  (* floors survive the entry round trip *)
  let entry = history_entry ~kind:"floors" (List.map Obs.History.floor_row floors) in
  let entry =
    Result.get_ok (Obs.History.entry_of_json (Obs.History.json_of_entry entry))
  in
  Alcotest.(check bool) "floors round-trip" true
    (Obs.History.floors_of_entry entry = floors);
  Alcotest.(check bool) "latest_floors finds it" true
    (Obs.History.latest_floors [ history_entry []; entry ] ~experiment:"perf"
    = Some entry);
  let verdicts rows = Obs.History.check_floors ~floors rows in
  (* above the floor: pass *)
  Alcotest.(check bool) "pass above floor" false
    (List.exists Obs.History.violated (verdicts [ perf_row ~arm:"new" ~ratio:38. ]));
  (* below the floor: fail *)
  Alcotest.(check bool) "fail below floor" true
    (List.exists Obs.History.violated (verdicts [ perf_row ~arm:"new" ~ratio:4.9 ]));
  (* the gated row disappearing entirely: fail *)
  Alcotest.(check bool) "fail on missing row" true
    (List.exists Obs.History.violated (verdicts [ perf_row ~arm:"reference" ~ratio:1. ]))

let suite =
  [
    test "analysis: empty trace" analysis_empty_trace;
    test "analysis: zero registers" analysis_zero_registers;
    test "analysis: write_skew with no writes" analysis_write_skew_no_writes;
    test "analysis: scan clipped to register file" analysis_scan_clipped;
    test "sink sees exactly the recorded trace" sink_sees_recorded_trace;
    test "sink tee and filter compose" sink_tee_and_filter;
    test "stats sink matches batch analysis" stats_sink_matches_analysis;
    test "histogram quantiles within an octave" histogram_quantiles;
    test "histogram percentiles pinned across alloc-free rewrite"
      histogram_percentiles_pinned;
    test "metric record paths are allocation-free" record_paths_allocation_free;
    test "metrics registry get-or-create" registry_get_or_create;
    test "spans track every propose" spans_track_proposes;
    test "spans: starved proposes stay open, none phantom" spans_leave_starved_open;
    test "value JSON round-trip" value_json_roundtrip;
    test "event JSONL line round-trip" event_line_roundtrip;
    test "jsonl rejects malformed input" jsonl_rejects_garbage;
    test "jsonl file round-trip reproduces analysis" jsonl_file_roundtrip_analysis;
    test "jsonl 10k-event trace round-trips exactly" jsonl_10k_roundtrip;
    test "bench output format parses back" bench_out_format;
    json_string_roundtrip_qcheck;
    test "json escaping edge cases" json_escaping_edge_cases;
    test "bench output reader enforces schema" bench_out_reader;
    test "jsonl header versioned, legacy accepted" jsonl_header_versioned;
    test "history round-trip, diff, schema rejection" history_roundtrip_and_diff;
    test "history floors gate regressions" history_floors_gate;
  ]
