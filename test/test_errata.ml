(* Regression tests for the pseudocode errata found by executing the
   paper (EXPERIMENTS.md, "pseudocode errata").

   The erratum: Figure 3 line 13, read literally, assigns pref ←
   value(s[j1]) even when that value already equals pref; two stale
   copies of a halted process's pair then trap a solo process in the
   adopt branch forever, so the algorithm is not even 1-obstruction-
   free as printed.  The repair (fall through to the i increment when
   the assignment would not change pref) is the reading Lemma 5's proof
   assumes, and restores termination. *)

open Helpers
open Agreement

(* Build the poisoned scenario directly: registers pre-loaded with two
   identical stale pairs of a dead process whose value equals the solo
   runner's own preference. *)
let poisoned_config ~program_of =
  let p = Params.make ~n:3 ~m:1 ~k:2 in
  let r = Params.r_oneshot p in
  (* n=3, m=1, k=2: r = 4 *)
  let procs =
    Array.init 3 (fun pid ->
        program_of ~m:1 ~pid ~api:(Snapshot.Atomic.make ~off:0 ~len:r))
  in
  let config = Shm.Config.create ~registers:r ~procs () in
  (* p1 runs briefly and "dies", leaving copies of its pair around: we
     simulate the stale state by running p1 for a few iterations. *)
  let config, _ = Shm.Config.invoke config 1 (vi 7) in
  let rec steps config k = if k = 0 then config else steps (fst (Shm.Config.step config 1)) (k - 1) in
  (* p1: 3 iterations = writes (7, id1) at components 0, 1, 2 *)
  let config = steps config 6 in
  config

let run_solo_p0 config =
  let inputs ~pid ~instance = if pid = 0 && instance = 1 then Some (vi 7) else None in
  Shm.Exec.run ~sched:(Shm.Schedule.solo 0) ~inputs ~max_steps:5_000 config

(* Under the literal rule, p0 — whose own input 7 equals the stale
   pairs' value — spins forever in the adopt branch. *)
let literal_rule_livelocks () =
  let config = poisoned_config ~program_of:(fun ~m ~pid ~api -> Oneshot.program_paper_literal ~m ~pid ~api) in
  let res = run_solo_p0 config in
  (match res.Shm.Exec.stopped with
  | Shm.Exec.Fuel_exhausted -> ()
  | Shm.Exec.All_quiescent ->
    Alcotest.fail "literal adoption rule unexpectedly terminated");
  Alcotest.(check int) "p0 never decided" 0
    (Spec.Properties.completed_ops res.Shm.Exec.config 0)

(* Under the repaired rule, the same scenario terminates. *)
let repaired_rule_terminates () =
  let config = poisoned_config ~program_of:(fun ~m ~pid ~api -> Oneshot.program ~m ~pid ~api) in
  let res = run_solo_p0 config in
  (match res.Shm.Exec.stopped with
  | Shm.Exec.All_quiescent -> ()
  | Shm.Exec.Fuel_exhausted -> Alcotest.fail "repaired rule failed to terminate");
  Alcotest.(check int) "p0 decided" 1 (Spec.Properties.completed_ops res.Shm.Exec.config 0);
  match Spec.Properties.check_safety ~k:2 res.Shm.Exec.config with
  | Ok () -> ()
  | Error e -> Alcotest.failf "safety: %s" e

(* The literal rule also livelocks under the original discovery
   scenario: an m-bounded schedule of the full system (seed 12 was the
   first found; sweep a few to be robust to dynamics changes). *)
let literal_rule_fails_m_bounded () =
  let failing = ref 0 in
  for seed = 0 to 19 do
    let p = Params.make ~n:5 ~m:2 ~k:2 in
    let r = Params.r_oneshot p in
    let procs =
      Array.init 5 (fun pid ->
          Oneshot.program_paper_literal ~m:2 ~pid
            ~api:(Snapshot.Atomic.make ~off:0 ~len:r))
    in
    let config = Shm.Config.create ~registers:r ~procs () in
    let inputs = Shm.Exec.oneshot_inputs (Array.init 5 (fun pid -> vi (pid + 1))) in
    let sched = Shm.Schedule.m_bounded ~seed ~m:2 ~prefix:40 5 in
    let res = Shm.Exec.run ~sched ~inputs ~max_steps:100_000 config in
    if res.Shm.Exec.stopped = Shm.Exec.Fuel_exhausted then incr failing
  done;
  Alcotest.(check bool)
    (Printf.sprintf "literal rule diverges on some m-bounded seeds (%d/20)" !failing)
    true (!failing > 0)

(* Same sweep under the repaired rule: every run terminates (this is
   test_oneshot's m-bounded test, repeated here as the erratum's
   other half). *)
let repaired_rule_passes_m_bounded () =
  for seed = 0 to 19 do
    let p = Params.make ~n:5 ~m:2 ~k:2 in
    let sched = Shm.Schedule.m_bounded ~seed ~m:2 ~prefix:40 5 in
    let result = Runner.run_oneshot ~sched p in
    match result.Shm.Exec.stopped with
    | Shm.Exec.All_quiescent -> ()
    | Shm.Exec.Fuel_exhausted -> Alcotest.failf "seed %d diverged" seed
  done

(* Safety is identical under both rules (the erratum is liveness-only):
   random schedules, both rules, checker agrees. *)
let both_rules_equally_safe () =
  for seed = 0 to 19 do
    let p = Params.make ~n:4 ~m:1 ~k:2 in
    let r = Params.r_oneshot p in
    [ Oneshot.program; Oneshot.program_paper_literal ]
    |> List.iter (fun program_of ->
           let procs =
             Array.init 4 (fun pid ->
                 program_of ~m:1 ~pid ~api:(Snapshot.Atomic.make ~off:0 ~len:r))
           in
           let config = Shm.Config.create ~registers:r ~procs () in
           let inputs = Shm.Exec.oneshot_inputs (Array.init 4 (fun pid -> vi pid)) in
           let res =
             Shm.Exec.run ~sched:(Shm.Schedule.random ~seed 4) ~inputs
               ~max_steps:30_000 config
           in
           match Spec.Properties.check_safety ~k:2 res.Shm.Exec.config with
           | Ok () -> ()
           | Error e -> Alcotest.failf "seed %d: %s" seed e)
  done

let suite =
  [
    test "literal adoption rule livelocks on stale pairs" literal_rule_livelocks;
    test "repaired rule terminates on the same scenario" repaired_rule_terminates;
    test "literal rule diverges under m-bounded schedules" literal_rule_fails_m_bounded;
    test "repaired rule terminates under the same schedules" repaired_rule_passes_m_bounded;
    test "both rules are equally safe (erratum is liveness-only)" both_rules_equally_safe;
  ]
