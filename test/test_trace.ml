(* Tests for the tracing subsystem (Obs.Trace / Obs.Prof /
   Obs.Coverage / Obs.Chrome_trace): cross-domain span propagation
   under real domains, merged-output ordering, the zero-allocation
   detached guard, the coverage timeline, and both export formats. *)

open Helpers

(* ---- spans across real domains ---- *)

(* A span opened on one domain and closed on another — the steal
   pattern — must record both domains. *)
let span_crosses_domains () =
  let tr = Obs.Trace.create () in
  let c = Obs.Trace.begin_span tr ~cat:"test" "stolen" in
  let d = Domain.spawn (fun () -> Obs.Trace.end_span tr c) in
  Domain.join d;
  match Obs.Trace.find_span tr "stolen" with
  | None -> Alcotest.fail "span not recorded"
  | Some s ->
    Alcotest.(check bool) "closed on another domain" true
      (s.Obs.Trace.close_dom <> s.Obs.Trace.dom);
    Alcotest.(check bool) "duration non-negative" true (s.Obs.Trace.dur_ns >= 0);
    Alcotest.(check int) "nothing left open" 0 (Obs.Trace.open_count tr)

(* Nested spans opened concurrently on several domains: the merged
   output must still put every parent before each of its children
   (spans sort by (start_ns, id); ids are globally monotone). *)
let merged_ordering_under_domains () =
  let tr = Obs.Trace.create () in
  let root = Obs.Trace.begin_span tr ~cat:"test" "root" in
  let worker i =
    let c = Obs.Trace.begin_span tr ~parent:root ~cat:"test" (Fmt.str "child %d" i) in
    for j = 0 to 2 do
      Obs.Trace.with_span tr ~parent:c ~cat:"test" (Fmt.str "grandchild %d.%d" i j)
        (fun _ -> ())
    done;
    Obs.Trace.end_span tr c
  in
  let doms = Array.init 4 (fun i -> Domain.spawn (fun () -> worker i)) in
  Array.iter Domain.join doms;
  Obs.Trace.end_span tr root;
  let spans = Obs.Trace.spans tr in
  Alcotest.(check int) "all spans recorded" 17 (List.length spans);
  Alcotest.(check int) "none open" 0 (Obs.Trace.open_count tr);
  (* position of each id in the merged output *)
  let pos = Hashtbl.create 32 in
  List.iteri (fun i (s : Obs.Trace.span) -> Hashtbl.add pos s.Obs.Trace.id i) spans;
  List.iter
    (fun (s : Obs.Trace.span) ->
      if s.Obs.Trace.parent <> 0 then
        Alcotest.(check bool)
          (Fmt.str "parent of %s precedes it" s.Obs.Trace.name)
          true
          (Hashtbl.find pos s.Obs.Trace.parent < Hashtbl.find pos s.Obs.Trace.id))
    spans

(* Closing twice, or closing a ctx from a different collector, is a
   no-op — the contract that makes steal-time handoffs safe. *)
let end_span_idempotent () =
  let tr = Obs.Trace.create () in
  let other = Obs.Trace.create ~trace_id:999 () in
  let c = Obs.Trace.begin_span tr "once" in
  Obs.Trace.end_span tr c;
  Obs.Trace.end_span tr c;
  Obs.Trace.end_span other c;
  Alcotest.(check int) "one completed span" 1 (Obs.Trace.span_count tr);
  Alcotest.(check int) "other collector untouched" 0 (Obs.Trace.span_count other)

(* ---- the detached guard allocates nothing ---- *)

(* With no collector attached, the per-event instrumentation cost is
   one atomic load ([enabled]) and phase attribution is two array
   stores ([Prof.add]) — neither may allocate.  Same Gc-measured idiom
   as test_obs's record_paths_allocation_free. *)
let detached_paths_allocation_free () =
  Obs.Trace.detach ();
  Alcotest.(check bool) "detached" false (Obs.Trace.enabled ());
  let p = Obs.Prof.create () in
  let iters = 100_000 in
  let measure name f =
    f 0;
    let before = Gc.minor_words () in
    for i = 1 to iters do
      f i
    done;
    let words = Gc.minor_words () -. before in
    Alcotest.(check bool)
      (Fmt.str "%s allocates (%.0f minor words / %d calls)" name words iters)
      true (words < 1000.)
  in
  measure "Trace.enabled when detached" (fun _ -> ignore (Obs.Trace.enabled ()));
  measure "Prof.add" (fun i -> Obs.Prof.add p Obs.Prof.Interp i);
  measure "guarded bracket" (fun i ->
      (* the exact pattern instrumented sites compile to *)
      let t0 = if Obs.Trace.enabled () then Obs.Prof.now_ns () else 0 in
      if Obs.Trace.enabled () then Obs.Prof.add p Obs.Prof.Hash (t0 + i))

(* ambient_probe must be None when detached, so Exec.run's hoisted
   probe is the no-op and the run pays nothing per step. *)
let ambient_probe_detached () =
  Obs.Trace.detach ();
  Alcotest.(check bool) "no probe" true (Obs.Coverage.ambient_probe () = None);
  Alcotest.(check bool) "no collector" true (Obs.Trace.attached () = None)

(* ---- coverage timeline ---- *)

(* Stream a full run through the coverage probe: both counter tracks
   get one sample per step, the written counter is monotone, and its
   final value equals the memory's written-set size (the paper's space
   measure). *)
let coverage_probe_tracks_run () =
  let n = 4 in
  let p = Agreement.Params.make ~n ~m:1 ~k:2 in
  let config = Agreement.Instances.oneshot p in
  let inputs =
    Shm.Exec.oneshot_inputs (Array.init n (fun pid -> vi (pid + 1)))
  in
  let tr = Obs.Trace.create () in
  let result =
    Shm.Exec.run
      ~probe:(fun ~step ev config -> Obs.Coverage.probe tr ~step ev config)
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:7 n)
      ~inputs config
  in
  let samples = Obs.Trace.samples tr in
  let track name =
    List.filter (fun (s : Obs.Trace.sample) -> s.Obs.Trace.track = name) samples
  in
  let covered = track Obs.Coverage.track_covered in
  let written = track Obs.Coverage.track_written in
  Alcotest.(check int) "one covered sample per step" result.Shm.Exec.steps
    (List.length covered);
  Alcotest.(check int) "one written sample per step" result.Shm.Exec.steps
    (List.length written);
  let rec monotone = function
    | (a : Obs.Trace.sample) :: (b :: _ as rest) ->
      a.Obs.Trace.value <= b.Obs.Trace.value && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "written is monotone" true (monotone written);
  let final = List.nth written (List.length written - 1) in
  Alcotest.(check int) "final written = space measure"
    (Obs.Coverage.num_written result.Shm.Exec.config)
    (int_of_float final.Obs.Trace.value);
  (* with ~sets:true, write events carry the sets themselves *)
  let tr2 = Obs.Trace.create () in
  let _ =
    Shm.Exec.run
      ~probe:(fun ~step ev config -> Obs.Coverage.probe ~sets:true tr2 ~step ev config)
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:7 n)
      ~inputs config
  in
  let covs =
    List.filter
      (fun (i : Obs.Trace.instant) -> i.Obs.Trace.i_name = "cov")
      (Obs.Trace.instants tr2)
  in
  Alcotest.(check bool) "cov instants recorded" true (covs <> []);
  List.iter
    (fun (i : Obs.Trace.instant) ->
      match List.assoc_opt "written" i.Obs.Trace.i_args with
      | Some (Obs.Json.Arr _) -> ()
      | _ -> Alcotest.fail "cov instant lacks written set")
    covs

(* ---- parallel DPOR integration ---- *)

(* A traced parallel exploration must produce: the explore span, one
   worker span per domain, per-node coverage counters, and balanced
   open/close — the per-domain timeline the Chrome export renders. *)
let dpor_parallel_trace () =
  let p = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
  let config = Agreement.Instances.oneshot p in
  let inputs =
    Shm.Exec.oneshot_inputs (Array.init 3 (fun pid -> vi (pid + 1)))
  in
  let tr = Obs.Trace.create () in
  let prof = Obs.Prof.create () in
  let series = Obs.Prof.Series.create () in
  let jobs = 4 in
  let outcome =
    Obs.Trace.with_attached tr (fun () ->
        Spec.Modelcheck.run
          ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs })
          ~depth:10 ~inputs ~prof ~series
          ~check:(Spec.Properties.check_safety ~k:1)
          config)
  in
  (match outcome with
  | Spec.Modelcheck.Ok_bounded _ -> ()
  | Spec.Modelcheck.Counterexample { error; _ } -> Alcotest.failf "violation: %s" error);
  Alcotest.(check bool) "detached after" true (Obs.Trace.attached () = None);
  Alcotest.(check int) "nothing left open" 0 (Obs.Trace.open_count tr);
  let spans = Obs.Trace.spans tr in
  let named prefix =
    List.filter
      (fun (s : Obs.Trace.span) ->
        String.length s.Obs.Trace.name >= String.length prefix
        && String.sub s.Obs.Trace.name 0 (String.length prefix) = prefix)
      spans
  in
  Alcotest.(check int) "one explore span" 1 (List.length (named "explore"));
  Alcotest.(check int) "one worker span per domain" jobs
    (List.length (named "worker"));
  let explore = List.hd (named "explore") in
  List.iter
    (fun (w : Obs.Trace.span) ->
      Alcotest.(check int) "workers parented to explore" explore.Obs.Trace.id
        w.Obs.Trace.parent)
    (named "worker");
  (* distinct domains actually ran the workers *)
  let doms =
    List.sort_uniq compare
      (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.dom) (named "worker"))
  in
  Alcotest.(check int) "workers on distinct domains" jobs (List.length doms);
  (* coverage counters were sampled *)
  let tracks =
    List.sort_uniq compare
      (List.map (fun (s : Obs.Trace.sample) -> s.Obs.Trace.track) (Obs.Trace.samples tr))
  in
  Alcotest.(check bool) "covered track sampled" true
    (List.mem Obs.Coverage.track_covered tracks);
  (* the profile attributed time somewhere *)
  Alcotest.(check bool) "profile non-empty" false (Obs.Prof.is_empty prof);
  Alcotest.(check bool) "series sampled" true (Obs.Prof.Series.length series > 0)

(* ---- exports ---- *)

let populated_trace () =
  let tr = Obs.Trace.create () in
  let root = Obs.Trace.begin_span tr ~cat:"test" ~args:[ ("k", Obs.Json.Int 1) ] "root" in
  let d =
    Domain.spawn (fun () ->
        Obs.Trace.with_span tr ~parent:root ~cat:"test" "child" (fun _ ->
            Obs.Trace.counter tr ~track:"regs" 2.;
            let f = Obs.Trace.fresh_flow tr in
            Obs.Trace.instant tr ~cat:"test" ~flow:(f, `Out) "handoff.out";
            Obs.Trace.instant tr ~cat:"test" ~flow:(f, `In) "handoff.in"))
  in
  Domain.join d;
  Obs.Trace.instant tr ~cat:"test" ~args:[ ("reg", Obs.Json.Int 0) ] "write";
  Obs.Trace.counter tr ~track:"regs" 3.;
  Obs.Trace.end_span tr root;
  tr

(* The span JSONL round-trips, and the reader rejects a newer major. *)
let trace_jsonl_roundtrip () =
  let tr = populated_trace () in
  let path = Filename.temp_file "sa_spans" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.save_jsonl path tr;
      match Obs.Trace.load_jsonl path with
      | Error e -> Alcotest.failf "reload: %s" e
      | Ok r ->
        Alcotest.(check int) "trace id" (Obs.Trace.trace_id tr) r.Obs.Trace.r_trace_id;
        Alcotest.(check bool) "spans back" true (r.Obs.Trace.r_spans = Obs.Trace.spans tr);
        Alcotest.(check bool) "instants back" true
          (r.Obs.Trace.r_instants = Obs.Trace.instants tr);
        Alcotest.(check bool) "samples back" true
          (r.Obs.Trace.r_samples = Obs.Trace.samples tr))

let trace_jsonl_rejects_newer_major () =
  let path = Filename.temp_file "sa_spans_v99" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"jsonl\":\"sa-trace\",\"schema\":99,\"trace_id\":1,\"epoch_ns\":0}\n";
      close_out oc;
      match Obs.Trace.load_jsonl path with
      | Ok _ -> Alcotest.fail "accepted schema 99"
      | Error e -> Alcotest.(check bool) "rejected with a reason" true (e <> ""))

(* The Chrome export is well-formed trace-event JSON: parses back, has
   per-domain thread metadata, complete events with durations, and the
   counter track. *)
let chrome_trace_valid () =
  let tr = populated_trace () in
  let j = Obs.Chrome_trace.to_json tr in
  (match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error e -> Alcotest.failf "chrome JSON unparseable: %s" e
  | Ok j' -> Alcotest.(check bool) "round-trips" true (j = j'));
  let events =
    match Obs.Json.member "traceEvents" j with
    | Some (Obs.Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let phs =
    List.filter_map
      (fun e ->
        match Obs.Json.member "ph" e with Some (Obs.Json.String p) -> Some p | _ -> None)
    events
  in
  List.iter
    (fun ph ->
      Alcotest.(check bool) (Fmt.str "has ph %S" ph) true (List.mem ph phs))
    [ "M"; "X"; "i"; "s"; "f"; "C" ];
  (* X events carry non-negative numeric ts/dur in microseconds *)
  List.iter
    (fun e ->
      match Obs.Json.member "ph" e with
      | Some (Obs.Json.String "X") ->
        let num_field name =
          match Obs.Json.member name e with
          | Some (Obs.Json.Float v) -> v
          | Some (Obs.Json.Int v) -> float_of_int v
          | _ -> Alcotest.failf "X event lacks numeric %s" name
        in
        Alcotest.(check bool) "ts >= 0" true (num_field "ts" >= 0.);
        Alcotest.(check bool) "dur >= 0" true (num_field "dur" >= 0.)
      | _ -> ())
    events;
  (* and the file writer produces the same parseable document *)
  let path = Filename.temp_file "sa_chrome" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Chrome_trace.save path tr;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match Obs.Json.of_string body with
      | Error e -> Alcotest.failf "saved chrome trace unparseable: %s" e
      | Ok _ -> ())

(* ---- prof ---- *)

let prof_attribution_and_merge () =
  let a = Obs.Prof.create () and b = Obs.Prof.create () in
  Obs.Prof.add a Obs.Prof.Interp 100;
  Obs.Prof.add a Obs.Prof.Interp 50;
  Obs.Prof.add b Obs.Prof.Hash 25;
  Alcotest.(check int) "ns" 150 (Obs.Prof.ns a Obs.Prof.Interp);
  Alcotest.(check int) "count" 2 (Obs.Prof.count a Obs.Prof.Interp);
  Obs.Prof.merge_into ~into:a b;
  Alcotest.(check int) "merged ns" 25 (Obs.Prof.ns a Obs.Prof.Hash);
  Alcotest.(check int) "total" 175 (Obs.Prof.total_ns a);
  Alcotest.(check bool) "b untouched" false (Obs.Prof.is_empty b);
  (* the json form names every phase it reports *)
  match Obs.Prof.to_json a with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "prof json not an object"

let series_rows_sorted () =
  let s = Obs.Prof.Series.create () in
  Obs.Prof.Series.add s ~ts_ns:30 ~nodes:3 ~frontier:1 ~cache_hits:0 ~sleep_hits:0;
  Obs.Prof.Series.add s ~ts_ns:10 ~nodes:1 ~frontier:2 ~cache_hits:0 ~sleep_hits:1;
  Obs.Prof.Series.add s ~ts_ns:20 ~nodes:2 ~frontier:3 ~cache_hits:1 ~sleep_hits:1;
  let rows = Obs.Prof.Series.rows s in
  Alcotest.(check (list int)) "ts sorted" [ 10; 20; 30 ]
    (List.map (fun (r : Obs.Prof.Series.row) -> r.Obs.Prof.Series.ts_ns) rows);
  (* replayed into a trace, rows keep their own timestamps *)
  let tr = Obs.Trace.create () in
  Obs.Prof.Series.to_trace s tr;
  let nodes =
    List.filter (fun (x : Obs.Trace.sample) -> x.Obs.Trace.track = "nodes")
      (Obs.Trace.samples tr)
  in
  Alcotest.(check (list int)) "replay keeps ts" [ 10; 20; 30 ]
    (List.map (fun (x : Obs.Trace.sample) -> x.Obs.Trace.s_ts_ns) nodes)

let suite =
  [
    test "span opened on one domain closes on another" span_crosses_domains;
    test "merged ordering: parents precede children across domains"
      merged_ordering_under_domains;
    test "end_span is idempotent and collector-scoped" end_span_idempotent;
    test "detached instrumentation paths are allocation-free"
      detached_paths_allocation_free;
    test "ambient probe absent when detached" ambient_probe_detached;
    test "coverage probe tracks covered/written per step" coverage_probe_tracks_run;
    test "parallel DPOR trace: worker timelines, coverage, profile"
      dpor_parallel_trace;
    test "trace JSONL round-trips" trace_jsonl_roundtrip;
    test "trace JSONL rejects newer major" trace_jsonl_rejects_newer_major;
    test "chrome trace-event export is well-formed" chrome_trace_valid;
    test "prof attribution and merge" prof_attribution_and_merge;
    test "series rows sorted and replayed with own timestamps" series_rows_sorted;
  ]
