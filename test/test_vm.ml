(* Bytecode engine (Shm.Vm): compile-time rejection of ill-formed
   protocols, lowering edge cases pinned against the interpreter, the
   QCheck vm-vs-interpreter equivalence property on both memory
   backends, the state-derived exploration key, and front-door verdict
   agreement between [Modelcheck.run] and [Modelcheck.run_vm].

   The equivalence comparison deliberately mirrors the fuzzer's vm
   oracle (lib/fuzz/oracle.ml, section g) so a property failure here
   and a fuzz divergence there describe the same contract — but this
   copy additionally pins the interpreter side to an explicit memory
   backend, covering Persistent and Journaled separately. *)

open Shm
open Helpers
module G = Fuzz.Gen
module V = Value
module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Shared comparison machinery (the oracle's contract, verbatim shape) *)

let event_equal (a : Event.t) (b : Event.t) =
  match (a, b) with
  | Invoke a, Invoke b ->
    a.pid = b.pid && a.instance = b.instance && V.equal a.input b.input
  | Did_read a, Did_read b -> a.pid = b.pid && a.reg = b.reg && V.equal a.value b.value
  | Did_write a, Did_write b -> a.pid = b.pid && a.reg = b.reg && V.equal a.value b.value
  | Did_scan a, Did_scan b -> a.pid = b.pid && a.off = b.off && a.len = b.len
  | Output a, Output b ->
    a.pid = b.pid && a.instance = b.instance && V.equal a.value b.value
  | _ -> false

let trace_diff ta tb =
  if List.length ta <> List.length tb then
    Some (Fmt.str "trace lengths %d vs %d" (List.length ta) (List.length tb))
  else
    List.find_mapi
      (fun i (a, b) ->
        if event_equal a b then None
        else Some (Fmt.str "trace[%d]: %a vs %a" i Event.pp a Event.pp b))
      (List.combine ta tb)

let triple_compare (p1, i1, v1) (p2, i2, v2) =
  match compare (p1 : int) p2 with
  | 0 -> ( match compare (i1 : int) i2 with 0 -> V.compare v1 v2 | c -> c)
  | c -> c

let io_multiset_equal a b =
  let sa = List.sort triple_compare a and sb = List.sort triple_compare b in
  List.length sa = List.length sb
  && List.for_all2
       (fun (p1, i1, v1) (p2, i2, v2) -> p1 = p2 && i1 = i2 && V.equal v1 v2)
       sa sb

(* Replay a pid list as a scheduler, skipping out-of-range or
   unrunnable entries — the interpreter's [Gen.run] applies the same
   skipping rule, so both engines consume the schedule identically. *)
let cursor_schedule (p : G.program) sched =
  let cursor = ref sched in
  {
    Schedule.name = "vm-test-replay";
    next =
      (fun ~step:_ ~runnable ->
        let rec pick () =
          match !cursor with
          | [] -> None
          | pid :: tl ->
            cursor := tl;
            if pid >= 0 && pid < p.G.n && runnable pid then Some pid else pick ()
        in
        pick ());
  }

let final_scan (res : Exec.result) =
  let mem = Config.mem res.Exec.config in
  Memory.scan mem ~off:0 ~len:(Memory.size mem)

(* Run both engines on [p]/[sched] and report the first divergence:
   step count, stop reason, chronological trace, final memory, written
   set, space/step counters, and the i/o records as multisets. *)
let equiv_diff ?backend (p : G.program) sched =
  let ri = G.run ?backend p sched in
  let e = Vm.env (Vm.compile p) ~inputs:G.inputs in
  let rv =
    Vm.run ~record:true ~max_steps:(List.length sched + 1) ~sched:(cursor_schedule p sched)
      e
  in
  let f = rv.Vm.final in
  let mem = Config.mem ri.Exec.config in
  if ri.Exec.steps <> rv.Vm.steps then
    Some (Fmt.str "steps %d vs %d" ri.Exec.steps rv.Vm.steps)
  else if ri.Exec.stopped <> rv.Vm.stopped then Some "stop reasons differ"
  else
    match trace_diff ri.Exec.trace rv.Vm.trace with
    | Some d -> Some d
    | None ->
      let si = final_scan ri in
      if
        Array.length si <> Array.length f.Vm.memory
        || not (Array.for_all2 V.equal si f.Vm.memory)
      then Some "final memories differ"
      else if not (IntSet.equal (Memory.written_set mem) (IntSet.of_list f.Vm.written))
      then Some "written sets differ"
      else if Memory.num_written mem <> f.Vm.num_written then
        Some
          (Fmt.str "num_written %d vs %d" (Memory.num_written mem) f.Vm.num_written)
      else if Memory.write_count mem <> f.Vm.write_count then
        Some
          (Fmt.str "write_count %d vs %d" (Memory.write_count mem) f.Vm.write_count)
      else if Memory.read_count mem <> f.Vm.read_count then
        Some (Fmt.str "read_count %d vs %d" (Memory.read_count mem) f.Vm.read_count)
      else if not (io_multiset_equal (Config.inputs ri.Exec.config) f.Vm.inputs) then
        Some "invocation records differ"
      else if not (io_multiset_equal (Config.outputs ri.Exec.config) f.Vm.outputs) then
        Some "output records differ"
      else None

let assert_equiv ?backend p sched =
  match equiv_diff ?backend p sched with
  | None -> ()
  | Some d ->
    Alcotest.failf "vm diverges from interpreter on %s / %s: %s" (G.to_string p)
      (G.schedule_to_string sched) d

(* Enough round-robin steps to drive any of the small edge-case protos
   (plus its invocations) to quiescence. *)
let rr_sched n = List.init (n * 40) (fun i -> i mod n)

(* ------------------------------------------------------------------ *)
(* (a) Compile-time rejection *)

let expect_invalid what (p : G.program) =
  match Vm.compile p with
  | _ -> Alcotest.failf "%s: compile accepted an ill-formed protocol" what
  | exception Invalid_argument _ -> ()

let test_compile_rejects () =
  expect_invalid "write out of bounds"
    { G.registers = 2; n = 2; steps = [ G.Write (2, G.Input) ] };
  expect_invalid "read out of bounds"
    { G.registers = 1; n = 2; steps = [ G.Read 3; G.Decide G.Last ] };
  expect_invalid "negative register in loop body"
    { G.registers = 2; n = 2; steps = [ G.Loop (2, [ G.Read (-1) ]) ] };
  expect_invalid "scan overflowing the register file"
    { G.registers = 2; n = 2; steps = [ G.Scan (1, 2); G.Decide G.Last ] };
  expect_invalid "negative scan offset"
    { G.registers = 2; n = 2; steps = [ G.Scan (-1, 1) ] };
  expect_invalid "negative loop count"
    { G.registers = 1; n = 2; steps = [ G.Loop (-1, []); G.Decide G.Input ] };
  expect_invalid "no processes" { G.registers = 1; n = 0; steps = [ G.Decide G.Input ] };
  expect_invalid "negative register count"
    { G.registers = -1; n = 2; steps = [ G.Decide G.Input ] }

(* ------------------------------------------------------------------ *)
(* (b) Lowering edge cases, pinned against the interpreter *)

(* Each proto isolates one corner of the lowering: transparent control
   instructions, dead code after a mid-list decide, zero-length scans,
   ⊥ propagation before any read, and side-table interning for
   constants that do not fit the tagged even-code encoding. *)
let edge_protos =
  [
    ("empty step list", { G.registers = 1; n = 2; steps = [] });
    ( "loop count zero skips its body",
      { G.registers = 2; n = 2; steps = [ G.Loop (0, [ G.Write (0, G.Const 1) ]); G.Decide G.Input ] }
    );
    ( "loop with empty body",
      { G.registers = 1; n = 2; steps = [ G.Loop (3, []); G.Decide G.Input ] } );
    ( "nested loops multiply",
      {
        G.registers = 3;
        n = 2;
        steps =
          [
            G.Loop (2, [ G.Write (0, G.Const 1); G.Loop (3, [ G.Write (1, G.Last); G.Read 0 ]) ]);
            G.Decide G.Last;
          ];
      } );
    ( "zero-length scan",
      { G.registers = 2; n = 2; steps = [ G.Scan (0, 0); G.Decide G.Last ] } );
    ( "dead code after a mid-list decide",
      {
        G.registers = 2;
        n = 3;
        steps = [ G.Decide G.Input; G.Write (0, G.Const 9); G.Read 0 ];
      } );
    ( "write of last before any read is bottom",
      { G.registers = 2; n = 2; steps = [ G.Write (1, G.Last); G.Decide G.Last ] } );
    ( "constants outside the tagged range intern",
      {
        G.registers = 2;
        n = 2;
        steps =
          [
            G.Write (0, G.Const min_int);
            G.Read 0;
            G.Write (1, G.Const max_int);
            G.Decide G.Last;
          ];
      } );
    ( "no trailing decide halts without output",
      { G.registers = 2; n = 2; steps = [ G.Write (0, G.Input); G.Read 0 ] } );
  ]

let test_lowering_edges () =
  List.iter
    (fun (what, p) ->
      match equiv_diff p (rr_sched p.G.n) with
      | None -> ()
      | Some d -> Alcotest.failf "%s: %s" what d)
    edge_protos

(* Truncated schedules must also agree step-for-step (the vm stops
   mid-protocol with the same partial trace and counters). *)
let test_lowering_truncated () =
  List.iter
    (fun (what, p) ->
      List.iter
        (fun len ->
          match equiv_diff p (List.init len (fun i -> i mod p.G.n)) with
          | None -> ()
          | Some d -> Alcotest.failf "%s (schedule length %d): %s" what len d)
        [ 0; 1; 2; 3; 5 ])
    edge_protos

(* ------------------------------------------------------------------ *)
(* (c) QCheck equivalence on random protocols, both memory backends *)

let equivalence_property backend =
  QCheck.Test.make ~count:150
    ~name:(Fmt.str "vm = interpreter on random protocols (%s)" (Memory.backend_name backend))
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Rng.create seed in
      let p = G.generate rng in
      let sched = G.gen_schedule rng ~n:p.G.n in
      match equiv_diff ~backend p sched with
      | None -> true
      | Some d ->
        QCheck.Test.fail_reportf "vm diverges on %s / %s: %s" (G.to_string p)
          (G.schedule_to_string sched) d)

(* ------------------------------------------------------------------ *)
(* (d) The state-derived exploration key *)

(* Determinism: replaying one schedule from two fresh slices lands on
   bit-identical keys (the summands are pure functions of the state). *)
let test_key_deterministic seed =
  let rng = Rng.create seed in
  for _ = 1 to 25 do
    let p = G.generate rng in
    let sched = G.gen_schedule rng ~n:p.G.n in
    let e = Vm.env (Vm.compile p) ~inputs:G.inputs in
    let drive () =
      let st = Vm.make_state e in
      let _ =
        Vm.drive e st 0 ~sched:(cursor_schedule p sched)
          ~max_steps:(List.length sched + 1)
      in
      (Vm.key e st 0, Vm.key_hash e st 0)
    in
    let (ka, ha) = drive () and (kb, hb) = drive () in
    if ka <> kb || ha <> hb then
      Alcotest.failf "key not deterministic on %s / %s" (G.to_string p)
        (G.schedule_to_string sched)
  done

(* Convergence: the key hashes the state, not the path to it.  In this
   protocol every complete execution reaches the identical final state
   (each process's own write of the constant precedes its own read, so
   last = 5 regardless of interleaving) — so every complete schedule
   must produce the same key, which is exactly the collision the DPOR
   cache relies on to prune equivalent interleavings. *)
let test_key_converges seed =
  let p =
    { G.registers = 2; n = 3; steps = [ G.Write (0, G.Const 5); G.Read 0; G.Decide G.Last ] }
  in
  let e = Vm.env (Vm.compile p) ~inputs:G.inputs in
  let run_key sched =
    let st = Vm.make_state e in
    let _ = Vm.drive e st 0 ~sched:(cursor_schedule p sched) ~max_steps:1_000 in
    if not (Vm.quiescent e st 0) then Alcotest.fail "schedule did not quiesce";
    Vm.key e st 0
  in
  let reference = run_key (rr_sched p.G.n) in
  let rng = Rng.create seed in
  for _ = 1 to 50 do
    (* Random prefix, then a round-robin tail to force completion. *)
    let sched = G.gen_schedule rng ~n:p.G.n @ rr_sched p.G.n in
    let k = run_key sched in
    if k <> reference then
      Alcotest.fail "equal final states produced different keys"
  done;
  (* Sanity: the key does distinguish genuinely different states. *)
  let st = Vm.make_state e in
  if Vm.key e st 0 = reference then
    Alcotest.fail "initial and final states share a key"

(* ------------------------------------------------------------------ *)
(* (e) Front-door verdict agreement: Modelcheck.run vs run_vm *)

(* Counterexample schedules may legitimately differ (the engines cache
   and reduce differently), but the verdict — safe up to the bound, or
   some violation exists — is a property of the protocol and must
   match.  Small sizes keep the exhaustive cost of 40 protocols low. *)
let small_sizes =
  { G.max_registers = 3; max_procs = 3; max_steps = 3; max_loop = 2; max_sched = 8 }

let verdict_property =
  QCheck.Test.make ~count:40 ~name:"Modelcheck.run and run_vm agree on the verdict"
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Rng.create seed in
      let p = G.generate ~sizes:small_sizes rng in
      let engine = Spec.Modelcheck.Dpor { cache = true; jobs = 1 } in
      let interp =
        Spec.Modelcheck.run ~engine ~depth:5 ~inputs:G.inputs
          ~check:(Spec.Properties.check_safety ~k:1)
          (G.config p)
      in
      let vm =
        Spec.Modelcheck.run_vm ~engine ~depth:5 ~inputs:G.inputs
          ~check:(Spec.Properties.check_safety_io ~k:1)
          p
      in
      let violated = function
        | Spec.Modelcheck.Ok_bounded _ -> false
        | Spec.Modelcheck.Counterexample _ -> true
      in
      if violated interp = violated vm then true
      else
        QCheck.Test.fail_reportf "verdicts differ on %s: interpreter %s, vm %s"
          (G.to_string p)
          (if violated interp then "violation" else "safe")
          (if violated vm then "violation" else "safe"))

(* ------------------------------------------------------------------ *)

let suite =
  [
    test "compile rejects ill-formed protocols" test_compile_rejects;
    test "lowering edge cases match the interpreter" test_lowering_edges;
    test "truncated schedules match step-for-step" test_lowering_truncated;
    qcheck_to_alcotest (equivalence_property Memory.Persistent);
    qcheck_to_alcotest (equivalence_property Memory.Journaled);
    seeded_test "state key is deterministic" test_key_deterministic;
    seeded_test "state key converges on equal states" test_key_converges;
    qcheck_to_alcotest verdict_property;
  ]
