(* Unit tests for the shared-memory substrate: values, PRNG, memory,
   programs, configurations. *)

open Helpers
open Shm

(* ---- Value ---- *)

let value_equality () =
  Alcotest.(check bool) "bot = bot" true (Value.equal Value.bot Value.bot);
  Alcotest.(check bool) "int" true (Value.equal (vi 3) (vi 3));
  Alcotest.(check bool) "int neq" false (Value.equal (vi 3) (vi 4));
  Alcotest.(check bool) "pair" true
    (Value.equal (Value.pair (vi 1) (vi 2)) (Value.pair (vi 1) (vi 2)));
  Alcotest.(check bool) "pair neq" false
    (Value.equal (Value.pair (vi 1) (vi 2)) (Value.pair (vi 2) (vi 1)));
  Alcotest.(check bool) "list" true
    (Value.equal (Value.list [ vi 1; Value.bot ]) (Value.list [ vi 1; Value.bot ]));
  Alcotest.(check bool) "list length matters" false
    (Value.equal (Value.list [ vi 1 ]) (Value.list [ vi 1; vi 1 ]));
  Alcotest.(check bool) "cross-kind" false (Value.equal (vi 0) Value.bot)

let value_compare_total_order () =
  let vs =
    [ Value.bot; vi (-1); vi 5; Value.str "a"; Value.pair (vi 1) (vi 2);
      Value.list [ vi 1 ]; Value.list [] ]
  in
  (* reflexive, antisymmetric-ish, transitive by sort stability *)
  List.iter (fun v -> Alcotest.(check int) "refl" 0 (Value.compare v v)) vs;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check int) "antisym" 0 (compare (c1 > 0) (c2 < 0) |> abs |> min 0))
        vs)
    vs;
  let sorted = List.sort Value.compare vs in
  Alcotest.(check int) "sort keeps all" (List.length vs) (List.length sorted)

let value_accessors () =
  check_value "fst" (vi 1) (Value.fst (Value.pair (vi 1) (vi 2)));
  check_value "snd" (vi 2) (Value.snd (Value.pair (vi 1) (vi 2)));
  Alcotest.(check int) "to_int" 7 (Value.to_int (vi 7));
  Alcotest.check_raises "to_int on pair"
    (Invalid_argument "Value.to_int: (1,2)")
    (fun () -> ignore (Value.to_int (Value.pair (vi 1) (vi 2))))

(* ---- Rng ---- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 13)
  done

let rng_distribution_rough () =
  let r = Rng.create 99 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    counts.(Rng.int r 4) <- counts.(Rng.int r 4 |> fun _ -> Rng.int r 4) + 1
  done;
  (* each bucket should get a decent share; very loose bound *)
  Array.iter (fun c -> Alcotest.(check bool) "bucket populated" true (c > 500)) counts

let rng_split_independent () =
  let r = Rng.create 1 in
  let s = Rng.split r in
  let x = Rng.next_int64 r and y = Rng.next_int64 s in
  Alcotest.(check bool) "streams differ" true (x <> y)

let rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

(* ---- Memory ---- *)

let memory_read_write () =
  let m = Memory.create 4 in
  check_value "initial bot" Value.bot (Memory.read m 2);
  let m = Memory.write m 2 (vi 9) in
  check_value "written" (vi 9) (Memory.read m 2);
  check_value "others untouched" Value.bot (Memory.read m 3);
  Alcotest.(check int) "one register written" 1 (Memory.num_written m);
  Alcotest.(check int) "one write op" 1 (Memory.write_count m)

let memory_persistence () =
  let m0 = Memory.create 2 in
  let m1 = Memory.write m0 0 (vi 1) in
  let m2 = Memory.write m1 0 (vi 2) in
  check_value "m1 unchanged" (vi 1) (Memory.read m1 0);
  check_value "m2 sees latest" (vi 2) (Memory.read m2 0);
  check_value "m0 still bot" Value.bot (Memory.read m0 0)

let memory_scan_atomic () =
  let m = Memory.create 5 in
  let m = Memory.write m 1 (vi 1) in
  let m = Memory.write m 3 (vi 3) in
  let view = Memory.scan m ~off:1 ~len:3 in
  Alcotest.(check int) "len" 3 (Array.length view);
  check_value "v1" (vi 1) view.(0);
  check_value "v2" Value.bot view.(1);
  check_value "v3" (vi 3) view.(2)

(* Negative paths on both backends: the error messages are part of the
   interface (scripts match on them), so read, write, and scan must
   report the offending index/range in the same [0,size) style. *)
let memory_bounds_checked () =
  List.iter
    (fun backend ->
      let m = Memory.create ~backend 2 in
      Alcotest.check_raises "read oob"
        (Invalid_argument "Memory.read: register 2 out of range [0,2)") (fun () ->
          ignore (Memory.read m 2));
      Alcotest.check_raises "read negative"
        (Invalid_argument "Memory.read: register -3 out of range [0,2)") (fun () ->
          ignore (Memory.read m (-3)));
      Alcotest.check_raises "write oob"
        (Invalid_argument "Memory.write: register -1 out of range [0,2)") (fun () ->
          ignore (Memory.write m (-1) (vi 0)));
      Alcotest.check_raises "write oob high"
        (Invalid_argument "Memory.write: register 7 out of range [0,2)") (fun () ->
          ignore (Memory.write m 7 (vi 0)));
      Alcotest.check_raises "scan past end"
        (Invalid_argument "Memory.scan: range off=1 len=2 out of range [0,2)")
        (fun () -> ignore (Memory.scan m ~off:1 ~len:2));
      Alcotest.check_raises "scan negative off"
        (Invalid_argument "Memory.scan: range off=-1 len=1 out of range [0,2)")
        (fun () -> ignore (Memory.scan m ~off:(-1) ~len:1));
      Alcotest.check_raises "scan negative len"
        (Invalid_argument "Memory.scan: range off=0 len=-2 out of range [0,2)")
        (fun () -> ignore (Memory.scan m ~off:0 ~len:(-2)));
      (* boundary cases that must NOT raise *)
      Alcotest.(check int) "empty scan ok" 0
        (Array.length (Memory.scan m ~off:2 ~len:0));
      Alcotest.(check int) "full scan ok" 2
        (Array.length (Memory.scan m ~off:0 ~len:2)))
    [ Memory.Persistent; Memory.Journaled ]

(* ---- Program / Config ---- *)

let program_poised_inspection () =
  let p = Program.write 3 (vi 1) (fun () -> Program.stop) in
  Alcotest.(check (option int)) "poised write" (Some 3) (Program.poised_write p);
  let q = Program.read 0 (fun _ -> Program.stop) in
  Alcotest.(check (option int)) "read is not a write" None (Program.poised_write q);
  Alcotest.(check bool) "idle" true (Program.is_idle (Program.await (fun _ -> Program.stop)));
  Alcotest.(check bool) "halted" true (Program.is_halted Program.stop)

let config_step_semantics () =
  let prog =
    Program.await (fun v ->
        Program.write 0 v (fun () ->
            Program.read 0 (fun w -> Program.yield w Program.stop)))
  in
  let c = Config.create ~registers:1 ~procs:[| prog |] () in
  Alcotest.(check bool) "idle initially" true (Program.is_idle (Config.proc c 0));
  let c, _ = Config.invoke c 0 (vi 42) in
  let c, ev1 = Config.step c 0 in
  (match ev1 with
  | Event.Did_write { reg = 0; _ } -> ()
  | _ -> Alcotest.fail "expected write event");
  let c, _ = Config.step c 0 in
  let c, ev3 = Config.step c 0 in
  (match ev3 with
  | Event.Output { value; instance = 1; _ } -> check_value "echo" (vi 42) value
  | _ -> Alcotest.fail "expected output event");
  Alcotest.(check bool) "halted at end" true (Program.is_halted (Config.proc c 0));
  Alcotest.(check int) "output recorded" 1 (List.length (Config.outputs c))

let config_persistence_branches () =
  let prog =
    Program.await (fun v -> Program.write 0 v (fun () -> Program.yield v Program.stop))
  in
  let c0 = Config.create ~registers:1 ~procs:[| prog; prog |] () in
  let c0, _ = Config.invoke c0 0 (vi 1) in
  let c0, _ = Config.invoke c0 1 (vi 2) in
  (* branch A: p0 writes; branch B: p1 writes.  Both from c0. *)
  let ca, _ = Config.step c0 0 in
  let cb, _ = Config.step c0 1 in
  check_value "branch A sees p0" (vi 1) (Memory.read (Config.mem ca) 0);
  check_value "branch B sees p1" (vi 2) (Memory.read (Config.mem cb) 0);
  check_value "root untouched" Value.bot (Memory.read (Config.mem c0) 0)

let config_block_write () =
  let writer r v = Program.write r (vi v) (fun () -> Program.stop) in
  let c = Config.create ~registers:3 ~procs:[| writer 0 10; writer 2 12 |] () in
  let c, evs = Config.block_write c [ 0; 1 ] in
  Alcotest.(check int) "two events" 2 (List.length evs);
  check_value "r0" (vi 10) (Memory.read (Config.mem c) 0);
  check_value "r2" (vi 12) (Memory.read (Config.mem c) 2)

let config_block_write_requires_poised () =
  let c =
    Config.create ~registers:1
      ~procs:[| Program.read 0 (fun _ -> Program.stop) |] ()
  in
  Alcotest.check_raises "not poised"
    (Invalid_argument "Config.block_write: p0 is not poised to write") (fun () ->
      ignore (Config.block_write c [ 0 ]))

let footprint_scan_heads () =
  let scan ~off ~len = Program.scan ~off ~len (fun _ -> Program.stop) in
  let fp = Program.footprint (scan ~off:0 ~len:3) in
  Alcotest.(check (list int)) "full-range scan reads" [ 0; 1; 2 ] fp.Program.reads;
  Alcotest.(check (list int)) "scan writes nothing" [] fp.Program.writes;
  let fp = Program.footprint (scan ~off:2 ~len:2) in
  Alcotest.(check (list int)) "offset scan reads" [ 2; 3 ] fp.Program.reads;
  let fp = Program.footprint (scan ~off:1 ~len:1) in
  Alcotest.(check (list int)) "singleton scan" [ 1 ] fp.Program.reads;
  let fp = Program.footprint (scan ~off:5 ~len:0) in
  Alcotest.(check (list int)) "zero-length scan reads nothing" [] fp.Program.reads;
  Alcotest.(check bool) "zero-length scan is local" true
    (Program.footprint_is_local fp)

let footprint_scan_independence () =
  (* a zero-length scan commutes with everything; an overlapping write
     does not commute with a scan covering it *)
  let scan ~off ~len = Program.scan ~off ~len (fun _ -> Program.stop) in
  let wr r = Program.write r (vi 1) (fun () -> Program.stop) in
  let fp_scan = Program.footprint (scan ~off:0 ~len:3) in
  let fp_empty = Program.footprint (scan ~off:0 ~len:0) in
  let fp_w1 = Program.footprint (wr 1) in
  let fp_w9 = Program.footprint (wr 9) in
  Alcotest.(check bool) "covered write conflicts" false
    (Program.independent fp_scan fp_w1);
  Alcotest.(check bool) "disjoint write commutes" true
    (Program.independent fp_scan fp_w9);
  Alcotest.(check bool) "empty scan commutes with writes" true
    (Program.independent fp_empty fp_w1)

let suite =
  [
    test "value equality" value_equality;
    test "value compare is a total order" value_compare_total_order;
    test "value accessors" value_accessors;
    test "rng determinism" rng_deterministic;
    test "rng bounds" rng_bounds;
    test "rng rough uniformity" rng_distribution_rough;
    test "rng split independence" rng_split_independent;
    test "rng shuffle permutes" rng_shuffle_permutes;
    test "memory read/write/accounting" memory_read_write;
    test "memory persistence" memory_persistence;
    test "memory atomic scan" memory_scan_atomic;
    test "memory bounds checked" memory_bounds_checked;
    test "program poised inspection" program_poised_inspection;
    test "footprint of scan heads" footprint_scan_heads;
    test "scan footprint independence" footprint_scan_independence;
    test "config step semantics" config_step_semantics;
    test "config branches are independent" config_persistence_branches;
    test "config block write" config_block_write;
    test "block write requires poised writers" config_block_write_requires_poised;
  ]
