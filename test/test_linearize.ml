(* Unit tests for the snapshot linearizability checker itself. *)

open Helpers
open Spec.Linearize

let bot = Shm.Value.bot

let up ?(pid = 0) ~at ?(len = 0) i v =
  { pid; op = Update { i; v = vi v }; start = at; finish = at + len }

let sc ?(pid = 0) ~at ?(len = 0) view =
  { pid; op = Scan { view = Array.of_list view }; start = at; finish = at + len }

let sequential_ok () =
  let h = [ up ~at:0 0 1; up ~at:1 1 2; sc ~at:2 [ vi 1; vi 2 ] ] in
  Alcotest.(check bool) "linearizable" true (check ~components:2 h)

let empty_scan_ok () =
  Alcotest.(check bool) "initial scan sees bots" true
    (check ~components:2 [ sc ~at:0 [ bot; bot ] ])

let stale_scan_rejected () =
  (* update(0,1) completes before the scan starts, yet the scan misses it *)
  let h = [ up ~at:0 0 1; sc ~at:5 [ bot; bot ] ] in
  Alcotest.(check bool) "stale scan rejected" false (check ~components:2 h)

let concurrent_scan_may_miss () =
  (* the scan overlaps the update: both orders are allowed *)
  let h = [ up ~at:0 ~len:10 0 1; sc ~at:5 [ bot; bot ] ] in
  Alcotest.(check bool) "overlapping scan may miss" true (check ~components:2 h)

let new_old_inversion_rejected () =
  (* p1 updates component 0 then 1, sequentially; a scan that returns
     the new value of 1 but the old value of 0 tears that order *)
  let h =
    [ up ~pid:1 ~at:0 0 7; up ~pid:1 ~at:2 1 8; sc ~pid:2 ~at:4 [ bot; vi 8 ] ]
  in
  Alcotest.(check bool) "torn scan rejected" false (check ~components:2 h)

let non_monotone_scans_rejected () =
  (* one scan sees the update, a strictly later scan does not *)
  let h =
    [ up ~at:0 0 3; sc ~pid:1 ~at:2 [ vi 3; bot ]; sc ~pid:2 ~at:4 [ bot; bot ] ]
  in
  Alcotest.(check bool) "non-monotone scans rejected" false (check ~components:2 h)

let overwrites_ok () =
  let h = [ up ~at:0 0 1; up ~at:1 0 2; sc ~at:2 [ vi 2; bot ] ] in
  Alcotest.(check bool) "latest value wins" true (check ~components:2 h)

let interleaving_found () =
  (* two overlapping updates to the same component; two scans pin down
     the only consistent order *)
  let h =
    [
      up ~pid:1 ~at:0 ~len:10 0 1;
      up ~pid:2 ~at:0 ~len:10 0 2;
      sc ~pid:3 ~at:11 [ vi 2; bot ];
    ]
  in
  Alcotest.(check bool) "order u1 < u2 found" true (check ~components:2 h);
  let h_impossible =
    [
      up ~pid:1 ~at:0 ~len:2 0 1;
      up ~pid:2 ~at:5 ~len:2 0 2;
      (* real time forces u1 < u2, so a later scan cannot see 1 *)
      sc ~pid:3 ~at:10 [ vi 1; bot ];
    ]
  in
  Alcotest.(check bool) "real-time order enforced" false
    (check ~components:2 h_impossible)

let suite =
  [
    test "sequential history accepted" sequential_ok;
    test "initial scan sees bots" empty_scan_ok;
    test "scan missing a completed update rejected" stale_scan_rejected;
    test "overlapping scan may miss the update" concurrent_scan_may_miss;
    test "new-old inversion rejected" new_old_inversion_rejected;
    test "non-monotone scans rejected" non_monotone_scans_rejected;
    test "overwrite: latest value wins" overwrites_ok;
    test "checker searches interleavings and respects real time" interleaving_found;
  ]
