(* Backend equivalence: the journaled mutable memory backend
   (Shm.Memory.Journaled — flat array + undo journal) must be
   observationally identical to the persistent-map reference
   (Shm.Memory.Persistent).  These properties pin them together:
   identical traces, memory contents, accounting, footprints, and
   safety verdicts on randomized executions, and identical time-travel
   reads across retained old versions (the journal's reroot machinery
   under adversarial access patterns).

   This suite is the gate CI requires to run (it greps for these test
   names): do not mark any of these as `Slow or rename the suite. *)

open Agreement
module Iset = Set.Make (Int)

let to_alcotest = Helpers.qcheck_to_alcotest

let params_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun n ->
    int_range 1 (n - 1) >>= fun k ->
    int_range 1 k >>= fun m -> return (Params.make ~n ~m ~k))

let case_arb =
  QCheck.make
    ~print:(fun (p, seed) -> Fmt.str "%s seed=%d" (Params.to_string p) seed)
    QCheck.Gen.(pair params_gen (int_bound 9999))

let run backend (p, seed) =
  let n = p.Params.n in
  let config = Instances.oneshot ~backend p in
  let inputs =
    Shm.Exec.oneshot_inputs (Array.init n (fun pid -> Shm.Value.int (pid + 1)))
  in
  Shm.Exec.run ~record:true ~sched:(Shm.Schedule.random ~seed n) ~inputs
    ~max_steps:40_000 config

let event_equal a b =
  let open Shm in
  match (a, b) with
  | Event.Invoke e1, Event.Invoke e2 ->
    e1.pid = e2.pid && e1.instance = e2.instance && Value.equal e1.input e2.input
  | Event.Did_read e1, Event.Did_read e2 ->
    e1.pid = e2.pid && e1.reg = e2.reg && Value.equal e1.value e2.value
  | Event.Did_write e1, Event.Did_write e2 ->
    e1.pid = e2.pid && e1.reg = e2.reg && Value.equal e1.value e2.value
  | Event.Did_scan e1, Event.Did_scan e2 ->
    e1.pid = e2.pid && e1.off = e2.off && e1.len = e2.len
  | Event.Output e1, Event.Output e2 ->
    e1.pid = e2.pid && e1.instance = e2.instance && Value.equal e1.value e2.value
  | _, _ -> false

(* Same execution on both backends: identical traces, final memory,
   accounting, footprints, and safety verdict. *)
let prop_exec_equivalent =
  QCheck.Test.make ~name:"backends: identical traces, memory, verdicts"
    ~count:150 case_arb (fun ((p, _) as case) ->
      let open Shm in
      let a = run Memory.Persistent case and b = run Memory.Journaled case in
      let ca = a.Exec.config and cb = b.Exec.config in
      let ma = Config.mem ca and mb = Config.mem cb in
      let size = Memory.size ma in
      a.Exec.steps = b.Exec.steps
      && a.Exec.stopped = b.Exec.stopped
      && List.length a.Exec.trace = List.length b.Exec.trace
      && List.for_all2 event_equal a.Exec.trace b.Exec.trace
      && Memory.size mb = size
      && List.for_all
           (fun r -> Value.equal (Memory.read ma r) (Memory.read mb r))
           (List.init size Fun.id)
      && Iset.equal (Memory.written_set ma) (Memory.written_set mb)
      && Memory.read_count ma = Memory.read_count mb
      && Memory.write_count ma = Memory.write_count mb
      && Spec.Properties.check_safety ~k:p.Params.k ca
         = Spec.Properties.check_safety ~k:p.Params.k cb)

(* Time travel: retain every intermediate memory version while writing,
   then read them all back in an adversarial (alternating) order, which
   forces the journal to reroot back and forth across the whole version
   chain.  Every retained version must read exactly like the
   persistent-map version retained at the same point. *)
let writes_arb =
  QCheck.make
    ~print:(fun l ->
      Fmt.str "%a" Fmt.(list ~sep:sp (pair ~sep:(Fmt.any ":") int int)) l)
    QCheck.Gen.(list_size (int_range 1 60) (pair (int_bound 5) small_int))

let prop_time_travel =
  QCheck.Test.make ~name:"backends: retained versions read identically"
    ~count:200 writes_arb (fun writes ->
      let open Shm in
      let step (mp, mj, snaps) (r, v) =
        let v = Value.int v in
        let mp = Memory.write mp r v and mj = Memory.write mj r v in
        (mp, mj, (mp, mj) :: snaps)
      in
      let p0 = Memory.create ~backend:Memory.Persistent 6
      and j0 = Memory.create ~backend:Memory.Journaled 6 in
      let _, _, snaps = List.fold_left step (p0, j0, [ (p0, j0) ]) writes in
      let snaps = Array.of_list snaps in
      let m = Array.length snaps in
      (* alternate oldest/newest to maximize reroot distance *)
      let order =
        List.init m (fun i -> if i mod 2 = 0 then i / 2 else m - 1 - (i / 2))
      in
      List.for_all
        (fun i ->
          let mp, mj = snaps.(i) in
          List.for_all
            (fun r -> Value.equal (Memory.read mp r) (Memory.read mj r))
            (List.init 6 Fun.id)
          && Array.for_all2 Value.equal
               (Memory.scan mp ~off:0 ~len:6)
               (Memory.scan mj ~off:0 ~len:6))
        order)

(* Unshare: the detached copy reads identically, and writes after the
   split stay independent on both sides. *)
let prop_unshare =
  QCheck.Test.make ~name:"backends: unshare preserves contents" ~count:200
    writes_arb (fun writes ->
      let open Shm in
      let mj =
        List.fold_left
          (fun m (r, v) -> Memory.write m r (Value.int v))
          (Memory.create ~backend:Memory.Journaled 6)
          writes
      in
      let copy = Memory.unshare mj in
      let same a b =
        List.for_all
          (fun r -> Value.equal (Memory.read a r) (Memory.read b r))
          (List.init 6 Fun.id)
      in
      same mj copy
      &&
      let mj' = Memory.write mj 0 (Value.str "orig")
      and copy' = Memory.write copy 0 (Value.str "copy") in
      Value.equal (Memory.read mj' 0) (Value.str "orig")
      && Value.equal (Memory.read copy' 0) (Value.str "copy")
      && same mj copy)

let suite =
  List.map to_alcotest [ prop_exec_equivalent; prop_time_travel; prop_unshare ]
