(* Tests for the native conformance harness (lib/conform): the
   Spec.Linearize witness mode and pending-operation handling it rests
   on, the recorder's merge, and — the point of the exercise — mutation
   smoke tests: deliberately broken snapshot implementations must be
   rejected within a bounded seeded run, with a shrunk witness that
   still fails on recheck.  The real implementation must pass the same
   harness under every chaos profile exercised here. *)

open Helpers

let ev ~pid ~start ~finish op = { Spec.Linearize.pid; op; start; finish }
let upd i v = Spec.Linearize.Update { i; v }
let scn view = Spec.Linearize.Scan { view = Array.of_list view }

(* ---- Linearize: witness mode ---- *)

(* A legal 2-component history: the witness exists, contains every
   event exactly once, and respects real time. *)
let witness_mode_legal () =
  let events =
    [
      ev ~pid:0 ~start:0 ~finish:1 (upd 0 (vi 1));
      ev ~pid:1 ~start:2 ~finish:5 (scn [ vi 1; Shm.Value.bot ]);
      ev ~pid:0 ~start:3 ~finish:4 (upd 1 (vi 2));
      ev ~pid:1 ~start:6 ~finish:7 (scn [ vi 1; vi 2 ]);
    ]
  in
  match Spec.Linearize.witness ~components:2 events with
  | None -> Alcotest.fail "legal history rejected"
  | Some order ->
    Alcotest.(check int) "every event linearized" (List.length events)
      (List.length order);
    List.iter
      (fun e -> Alcotest.(check bool) "event from the history" true (List.mem e events))
      order;
    (* real time: if e1 finished before e2 started, e1 linearizes first *)
    let arr = Array.of_list order in
    Array.iteri
      (fun i e1 ->
        Array.iteri
          (fun j e2 ->
            if i > j then
              Alcotest.(check bool)
                (Fmt.str "real-time order: %a before %a" Spec.Linearize.pp_event e2
                   Spec.Linearize.pp_event e1)
                false
                (e1.Spec.Linearize.finish < e2.Spec.Linearize.start))
          arr)
      arr

(* New/old inversion: a later scan returns an older state. *)
let witness_mode_inversion () =
  let events =
    [
      ev ~pid:0 ~start:0 ~finish:1 (upd 0 (vi 1));
      ev ~pid:0 ~start:2 ~finish:3 (upd 0 (vi 2));
      ev ~pid:1 ~start:4 ~finish:5 (scn [ vi 2 ]);
      ev ~pid:1 ~start:6 ~finish:7 (scn [ vi 1 ]);
    ]
  in
  Alcotest.(check bool) "inversion rejected" false
    (Spec.Linearize.check ~components:1 events)

(* ---- Linearize: pending operations (crash completion points) ---- *)

(* A scan observes a value whose writer crashed before responding: only
   admissible if the pending update is allowed to take effect. *)
let pending_update_explains_scan () =
  let pending = [ ev ~pid:0 ~start:0 ~finish:max_int (upd 0 (vi 7)) ] in
  let completed = [ ev ~pid:1 ~start:5 ~finish:6 (scn [ vi 7 ]) ] in
  Alcotest.(check bool) "pending update linearized" true
    (Spec.Linearize.check_partial ~components:1 ~pending completed);
  Alcotest.(check bool) "without the pending op the scan is inexplicable" false
    (Spec.Linearize.check ~components:1 completed)

(* A pending update may also never take effect: scans that saw only ⊥
   stay legal. *)
let pending_update_droppable () =
  let pending = [ ev ~pid:0 ~start:0 ~finish:max_int (upd 0 (vi 7)) ] in
  let completed =
    [
      ev ~pid:1 ~start:1 ~finish:2 (scn [ Shm.Value.bot ]);
      ev ~pid:1 ~start:3 ~finish:4 (scn [ vi 7 ]);
    ]
  in
  (* effect between the scans *)
  Alcotest.(check bool) "effect point enumerated" true
    (Spec.Linearize.check_partial ~components:1 ~pending completed);
  (* or never: both scans see ⊥ *)
  let only_bot = [ ev ~pid:1 ~start:1 ~finish:2 (scn [ Shm.Value.bot ]) ] in
  Alcotest.(check bool) "never-took-effect also legal" true
    (Spec.Linearize.check_partial ~components:1 ~pending only_bot)

(* A pending update must not linearize before its invocation. *)
let pending_respects_invocation () =
  let pending = [ ev ~pid:0 ~start:10 ~finish:max_int (upd 0 (vi 7)) ] in
  let completed = [ ev ~pid:1 ~start:1 ~finish:2 (scn [ vi 7 ]) ] in
  Alcotest.(check bool) "scan before pending invocation cannot see it" false
    (Spec.Linearize.check_partial ~components:1 ~pending completed)

(* Pending scans constrain nothing — they are dropped wholesale. *)
let pending_scan_ignored () =
  let pending = [ ev ~pid:0 ~start:0 ~finish:max_int (scn [ vi 99 ]) ] in
  let completed = [ ev ~pid:1 ~start:1 ~finish:2 (scn [ Shm.Value.bot ]) ] in
  Alcotest.(check bool) "pending scan's impossible view is irrelevant" true
    (Spec.Linearize.check_partial ~components:1 ~pending completed)

(* ---- Recorder ---- *)

let recorder_merges_sorted () =
  let r = Conform.Recorder.create ~domains:2 in
  let h0 = Conform.Recorder.handle r ~pid:0 in
  let h1 = Conform.Recorder.handle r ~pid:1 in
  Conform.Recorder.completed h0 ~start:10 ~finish:12 (upd 0 (vi 1));
  Conform.Recorder.completed h1 ~start:3 ~finish:5 (upd 1 (vi 2));
  Conform.Recorder.completed h0 ~start:20 ~finish:21 (scn [ vi 1; vi 2 ]);
  Conform.Recorder.pending h1 ~start:30 (upd 0 (vi 3));
  let completed, pending = Conform.Recorder.history r in
  Alcotest.(check int) "all ops recorded" 4 (Conform.Recorder.ops_recorded r);
  Alcotest.(check (list int)) "completed sorted by invocation" [ 3; 10; 20 ]
    (List.map (fun e -> e.Spec.Linearize.start) completed);
  match pending with
  | [ p ] ->
    Alcotest.(check int) "pending keeps its start" 30 p.Spec.Linearize.start;
    Alcotest.(check bool) "pending finish is +inf" true
      (p.Spec.Linearize.finish = max_int)
  | l -> Alcotest.failf "expected 1 pending op, got %d" (List.length l)

(* ---- Chaos plumbing ---- *)

let chaos_profile_names () =
  List.iter
    (fun p ->
      match Conform.Chaos.profile_of_string (Conform.Chaos.profile_name p) with
      | Some p' -> Alcotest.(check bool) "round-trips" true (p = p')
      | None -> Alcotest.failf "profile %s does not parse back" (Conform.Chaos.profile_name p))
    Conform.Chaos.all_profiles;
  Alcotest.(check bool) "unknown profile rejected" true
    (Conform.Chaos.profile_of_string "tempest" = None)

(* ---- Mutation smoke tests ---- *)

let mutant_config seed =
  { Conform.Harness.default_config with seed; iters = 400; ops = 12 }

(* A mutant run must fail within the iteration budget, and the shrunk
   witness must be a genuine sub-history that still fails the checker —
   not a by-product of the shrinking machinery. *)
let assert_mutant_rejected ~seed sut =
  let cfg = mutant_config seed in
  match Conform.Harness.run_snapshot ~sut cfg with
  | Conform.Harness.Pass _ ->
    Alcotest.failf "mutant %s survived %d iterations" sut.Conform.Sut.name cfg.iters
  | Conform.Harness.Fail v ->
    Alcotest.(check bool) "witness non-empty" true (v.Conform.Harness.shrunk <> []);
    Alcotest.(check bool) "witness no longer than the history" true
      (List.length v.Conform.Harness.shrunk <= List.length v.Conform.Harness.completed);
    List.iter
      (fun e ->
        Alcotest.(check bool) "witness event from the recorded history" true
          (List.mem e v.Conform.Harness.completed))
      v.Conform.Harness.shrunk;
    (* the shrunk witness independently re-checks as non-linearizable *)
    Alcotest.(check bool) "shrunk witness still fails" false
      (Spec.Linearize.check_partial ~components:cfg.Conform.Harness.components
         ~pending:v.Conform.Harness.pending v.Conform.Harness.shrunk);
    (* and the replay seed is the one the harness advertises *)
    Alcotest.(check int) "replayable iteration seed"
      (Conform.Harness.iter_seed ~seed:cfg.Conform.Harness.seed
         ~iter:v.Conform.Harness.iter)
      v.Conform.Harness.iter_seed

let single_collect_rejected seed =
  assert_mutant_rejected ~seed Conform.Sut.single_collect

let torn_update_rejected seed = assert_mutant_rejected ~seed Conform.Sut.torn_update

(* Every registered mutant is flagged as such and known to [by_name]. *)
let mutant_registry () =
  Alcotest.(check bool) "real is not a mutant" false Conform.Sut.real.Conform.Sut.mutant;
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.Conform.Sut.name ^ " flagged") true s.Conform.Sut.mutant;
      match Conform.Sut.by_name s.Conform.Sut.name with
      | Some s' -> Alcotest.(check string) "by_name finds it" s.Conform.Sut.name s'.Conform.Sut.name
      | None -> Alcotest.failf "mutant %s not found by name" s.Conform.Sut.name)
    Conform.Sut.mutants

(* ---- The real implementation passes ---- *)

let real_passes ~profile ~iters seed =
  let cfg =
    { Conform.Harness.default_config with profile; seed; iters; ops = 12 }
  in
  match Conform.Harness.run_snapshot ~sut:Conform.Sut.real cfg with
  | Conform.Harness.Pass { iters = i; ops } ->
    Alcotest.(check int) "all iterations ran" iters i;
    Alcotest.(check bool) "operations recorded" true (ops > 0)
  | Conform.Harness.Fail v ->
    Alcotest.failf "real implementation rejected:@.%a" Conform.Harness.pp_violation v

let real_passes_calm seed = real_passes ~profile:Conform.Chaos.Calm ~iters:30 seed

let real_passes_chaos seed =
  real_passes ~profile:Conform.Chaos.Yields ~iters:15 seed;
  real_passes ~profile:Conform.Chaos.Stalls ~iters:8 seed;
  real_passes ~profile:Conform.Chaos.Crashes ~iters:15 seed

(* ---- Metrics export ---- *)

let metrics_exported seed =
  let metrics = Obs.Metrics.create () in
  let cfg = { Conform.Harness.default_config with seed; iters = 5; ops = 10 } in
  (match Conform.Harness.run_snapshot ~metrics ~sut:Conform.Sut.real cfg with
  | Conform.Harness.Pass _ -> ()
  | Conform.Harness.Fail v ->
    Alcotest.failf "real implementation rejected:@.%a" Conform.Harness.pp_violation v);
  let counter name = Obs.Metrics.Counter.value (Obs.Metrics.counter metrics name) in
  Alcotest.(check int) "conform.iters" 5 (counter "conform.iters");
  Alcotest.(check int) "one check per iteration" 5 (counter "conform.checks");
  Alcotest.(check bool) "ops counted" true (counter "conform.ops" > 0);
  Alcotest.(check bool) "check time accumulated" true (counter "conform.check_ns" > 0);
  Alcotest.(check int) "no violations" 0 (counter "conform.violations");
  let hist name = Obs.Metrics.Histogram.count (Obs.Metrics.histogram metrics name) in
  Alcotest.(check bool) "update latencies observed" true (hist "conform.update_ns" > 0);
  Alcotest.(check bool) "scan latencies observed" true (hist "conform.scan_ns" > 0)

(* ---- Agreement under chaos ---- *)

let agreement_under_crashes seed =
  let params = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
  match
    Conform.Harness.run_agreement ~params ~profile:Conform.Chaos.Crashes ~seed
      ~iters:15 ()
  with
  | Conform.Harness.Agree_pass { iters; decided; crashed } ->
    Alcotest.(check int) "all instances ran" 15 iters;
    Alcotest.(check int) "every proposer decided or crashed" (15 * 3)
      (decided + crashed)
  | Conform.Harness.Agree_fail { error; _ } ->
    Alcotest.failf "native agreement violated safety under chaos: %s" error

let suite =
  [
    test "linearize witness: legal history, order respects real time" witness_mode_legal;
    test "linearize witness: new/old inversion rejected" witness_mode_inversion;
    test "pending update explains an orphan scan" pending_update_explains_scan;
    test "pending update may take effect late or never" pending_update_droppable;
    test "pending update cannot linearize before invocation" pending_respects_invocation;
    test "pending scans are dropped without loss" pending_scan_ignored;
    test "recorder merges per-domain buffers sorted" recorder_merges_sorted;
    test "chaos profile names round-trip" chaos_profile_names;
    test "mutant registry: flags and lookup" mutant_registry;
    seeded_slow_test "mutation smoke: single-collect scan rejected" single_collect_rejected;
    seeded_slow_test "mutation smoke: torn two-step update rejected" torn_update_rejected;
    seeded_slow_test "real snapshot passes conformance (calm)" real_passes_calm;
    seeded_slow_test "real snapshot passes conformance (chaos profiles)" real_passes_chaos;
    seeded_slow_test "conform counters and latency histograms exported" metrics_exported;
    seeded_slow_test "native agreement safe under crash chaos" agreement_under_crashes;
  ]
