(* Anonymity tests: the Figure 5 / anonymous one-shot programs must be
   genuinely symmetric — identical program text, behaviour depending
   only on inputs and schedule, never on the slot index. *)

open Helpers
open Agreement

(* Permuting (input, schedule) roles permutes outcomes: running slot 0
   with input a and slot 1 with input b under schedule σ produces the
   mirror outcome of running slot 0 with b and slot 1 with a under the
   role-swapped schedule. *)
let swap_symmetry () =
  let p = Params.make ~n:3 ~m:1 ~k:1 in
  let swap pid = match pid with 0 -> 1 | 1 -> 0 | x -> x in
  (* a fixed arbitrary schedule over pids, and its role-swapped mirror *)
  let base = [ 0; 1; 0; 0; 1; 2; 0; 1; 1; 0; 2; 1; 0; 1 ] in
  let run ~swapped =
    (* atomic snapshot: process programs are literally identical values *)
    let config = Instances.anonymous_oneshot ~r:4 ~slots:3 p in
    let inputs ~pid ~instance =
      if instance <> 1 then None
      else
        let role = if swapped then swap pid else pid in
        Some (vi (100 + role))
    in
    let steps = if swapped then List.map swap base else base in
    let remaining = ref steps in
    let sched =
      {
        Shm.Schedule.name = "scripted";
        next =
          (fun ~step:_ ~runnable ->
            match !remaining with
            | pid :: rest when runnable pid ->
              remaining := rest;
              Some pid
            | _ -> None);
      }
    in
    Shm.Exec.run ~sched ~inputs ~max_steps:1_000
      config
  in
  let r1 = run ~swapped:false and r2 = run ~swapped:true in
  (* same number of steps, and outputs correspond under the swap *)
  Alcotest.(check int) "same step count" r1.Shm.Exec.steps r2.Shm.Exec.steps;
  let outs r = Shm.Config.outputs r.Shm.Exec.config in
  Alcotest.(check int) "same output count" (List.length (outs r1)) (List.length (outs r2));
  List.iter2
    (fun (pid1, i1, v1) (pid2, i2, v2) ->
      Alcotest.(check int) "swapped pid" (swap pid1) pid2;
      Alcotest.(check int) "same instance" i1 i2;
      (* values encode roles: role(pid1) under normal = role(swap pid1) under swapped *)
      check_value "same value" v1 v2)
    (outs r1) (outs r2)

(* The non-anonymous algorithms do depend on ids (their tuples embed
   them); the anonymous ones write id-free values.  Check register
   contents: no anonymous register value ever mentions a pid. *)
let no_ids_in_anonymous_registers () =
  let p = Params.make ~n:4 ~m:2 ~k:2 in
  let config = Instances.anonymous p in
  let inputs = Shm.Exec.repeated_inputs ~rounds:2 (fun _ i -> vi (1000 + i)) in
  let res =
    Shm.Exec.run ~record:true
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:400 4)
      ~inputs ~max_steps:200_000 config
  in
  (* Figure 5 component tuples are (pref, t, history): exactly 3
     fields, and pref comes from the input domain (>= 1000), never a
     pid.  Register H (index r) holds bare histories and is skipped. *)
  let h_reg = Params.r_anonymous p in
  List.iter
    (fun ev ->
      match ev with
      | Shm.Event.Did_write { reg; value; _ } when reg < h_reg -> (
        match Shm.Value.view value with
        | Shm.Value.List (pref :: _)
          when (match Shm.Value.view pref with Shm.Value.Int _ -> true | _ -> false) ->
          Alcotest.(check bool) "pref from input domain" true
            (Shm.Value.to_int pref >= 1000)
        | _ -> Alcotest.fail "unexpected component tuple shape")
      | _ -> ())
    res.Shm.Exec.trace

(* Clones really are indistinguishable: planting a copy of a process's
   state into another slot and running the copy yields the same writes
   the original would have produced. *)
let clone_behaves_identically () =
  let p = Params.make ~n:4 ~m:1 ~k:1 in
  let config = Instances.anonymous_oneshot ~r:3 ~slots:4 p in
  let inputs ~pid:_ ~instance = if instance = 1 then Some (vi 5) else None in
  (* advance slot 0 a few steps *)
  let config, _ = Shm.Config.invoke config 0 (vi 5) in
  let rec advance config k = if k = 0 then config else advance (fst (Shm.Config.step config 0)) (k - 1) in
  let config = advance config 5 in
  let cloned = Shm.Config.clone_proc config ~from_:0 ~to_:3 in
  (* run original in one branch, clone in the other: identical traces *)
  let run pid config =
    let sched = Shm.Schedule.solo pid in
    (Shm.Exec.run ~record:true ~sched ~inputs ~max_steps:200 config).Shm.Exec.trace
    |> List.map (fun ev ->
           match ev with
           | Shm.Event.Did_write { reg; value; _ } -> Some (reg, value)
           | _ -> None)
    |> List.filter_map Fun.id
  in
  let w0 = run 0 cloned and w3 = run 3 cloned in
  Alcotest.(check int) "same write count" (List.length w0) (List.length w3);
  List.iter2
    (fun (r0, v0) (r3, v3) ->
      Alcotest.(check int) "same register" r0 r3;
      check_value "same value" v0 v3)
    w0 w3

let suite =
  [
    test "role swap symmetry (true anonymity)" swap_symmetry;
    test "no ids in anonymous register contents" no_ids_in_anonymous_registers;
    test "clones behave identically to originals" clone_behaves_identically;
  ]
