(* The static analyzer (lib/analyze): abstract-interpretation
   footprints, lints, registry sweep, mutation tests, and the
   soundness property "dynamically written registers are contained in
   the static footprint" on random protocols under random schedules. *)

open Helpers
module P = Shm.Program
module V = Shm.Value

module IS = Set.Make (Int)

let to_alcotest = Helpers.qcheck_to_alcotest

let params ~n ~m ~k = Agreement.Params.make ~n ~m ~k

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- abstract stepping hooks ---- *)

let hooks_feed () =
  let p = P.read 0 (fun v -> P.yield v P.stop) in
  (match P.feed_read p (vi 7) with
  | Some (P.Yield (v, P.Stop)) -> Alcotest.(check bool) "read fed" true (V.equal v (vi 7))
  | _ -> Alcotest.fail "feed_read");
  Alcotest.(check bool) "wrong shape rejected" true (P.feed p P.RUnit = None);
  let w = P.write 1 (vi 2) (fun () -> P.stop) in
  (match P.feed_write_ack w with
  | Some P.Stop -> ()
  | _ -> Alcotest.fail "feed_write_ack");
  let s = P.scan ~off:0 ~len:2 (fun view -> P.yield view.(1) P.stop) in
  (match P.feed_scan s [| V.bot; vi 9 |] with
  | Some (P.Yield (v, _)) -> Alcotest.(check bool) "scan fed" true (V.equal v (vi 9))
  | _ -> Alcotest.fail "feed_scan");
  Alcotest.(check bool) "scan length checked" true
    (P.feed_scan s [| V.bot |] = None);
  let a = P.await (fun v -> P.yield v P.stop) in
  (match P.start a (vi 3) with
  | Some (P.Yield _) -> ()
  | _ -> Alcotest.fail "start");
  match P.take_yield (P.yield (vi 1) P.stop) with
  | Some (v, P.Stop) -> Alcotest.(check bool) "take_yield" true (V.equal v (vi 1))
  | _ -> Alcotest.fail "take_yield"

(* ---- interpreter on hand-rolled programs ---- *)

let config_of ~registers progs =
  Shm.Config.create ~registers ~procs:(Array.of_list progs) ()

let absint_footprint_and_dead () =
  (* p0 writes R0 then R1; R2 is never written by anyone *)
  let p0 =
    P.await (fun v ->
        P.write 0 v @@ fun () ->
        P.write 1 (vi 5) @@ fun () -> P.yield v P.stop)
  in
  let p1 = P.await (fun _ -> P.read 1 (fun v -> P.yield v P.stop)) in
  let s =
    Analyze.Absint.analyze
      ~budgets:(Analyze.Absint.exhaustive ~registers:3 ~n:2)
      (config_of ~registers:3 [ p0; p1 ])
  in
  Alcotest.(check (list int)) "writes" [ 0; 1 ]
    (Analyze.Absint.IntSet.elements s.Analyze.Absint.writes);
  Alcotest.(check (list int)) "reads" [ 1 ]
    (Analyze.Absint.IntSet.elements s.Analyze.Absint.reads);
  Alcotest.(check (list int)) "dead" [ 2 ]
    (Analyze.Absint.IntSet.elements s.Analyze.Absint.dead);
  Alcotest.(check bool) "converged" true s.Analyze.Absint.converged;
  (match Analyze.Absint.write_witness s 1 with
  | Some w -> Alcotest.(check bool) "witness non-empty" true (w <> [])
  | None -> Alcotest.fail "no witness for R1");
  Alcotest.(check bool) "no witness for dead register" true
    (Analyze.Absint.write_witness s 2 = None)

let absint_cross_process_flow () =
  (* p1's write target depends on the value p0 wrote: the joint
     fixpoint must propagate p0's value into p1's read. *)
  let p0 = P.await (fun _ -> P.write 0 (vi 1) @@ fun () -> P.stop) in
  let p1 =
    P.await (fun _ ->
        P.read 0 (fun v ->
            let target = match V.view v with V.Int 1 -> 2 | _ -> 1 in
            P.write target (vi 9) @@ fun () -> P.stop))
  in
  let s =
    Analyze.Absint.analyze
      ~budgets:(Analyze.Absint.exhaustive ~registers:3 ~n:2)
      (config_of ~registers:3 [ p0; p1 ])
  in
  (* both branches of p1 must be in the footprint: R1 (read ⊥) and R2
     (read p0's 1) *)
  Alcotest.(check (list int)) "writes cover both branches" [ 0; 1; 2 ]
    (Analyze.Absint.IntSet.elements s.Analyze.Absint.writes)

(* ---- lints ---- *)

let lint_write_after_decide () =
  let p =
    P.await (fun v ->
        P.write 0 v @@ fun () ->
        P.yield v (P.write 1 (vi 8) @@ fun () -> P.stop))
  in
  let s, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:2 [ p ])
  in
  ignore s;
  Alcotest.(check bool) "write-after-decide fires" true
    (List.exists
       (fun (d : Analyze.Lint.diag) -> d.rule = "decide/write-after-decide")
       (Analyze.Lint.errors diags))

let lint_oob_scan () =
  (* scan range sticks out of memory *)
  let p = P.await (fun _ -> P.scan ~off:1 ~len:3 (fun _ -> P.stop)) in
  let _, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:3 [ p ])
  in
  Alcotest.(check bool) "oob scan fires" true
    (List.exists
       (fun (d : Analyze.Lint.diag) ->
         d.rule = "space/out-of-bounds" && d.witness <> [])
       (Analyze.Lint.errors diags))

let lint_oob_write () =
  let p = P.await (fun v -> P.write 5 v @@ fun () -> P.yield v P.stop) in
  let _, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:2 [ p ])
  in
  Alcotest.(check bool) "oob write fires" true
    (List.exists
       (fun (d : Analyze.Lint.diag) -> d.rule = "space/out-of-bounds")
       (Analyze.Lint.errors diags))

let lint_unbounded_solo () =
  let rec spin i = P.write 0 (vi i) @@ fun () -> spin (1 - i) in
  let p = P.await (fun _ -> spin 0) in
  let _, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:1 [ p ])
  in
  Alcotest.(check bool) "unbounded solo loop fires" true
    (List.exists
       (fun (d : Analyze.Lint.diag) -> d.rule = "loop/unbounded-solo")
       (Analyze.Lint.errors diags))

let lint_clean_on_honest_program () =
  let p =
    P.await (fun v -> P.write 0 v @@ fun () -> P.yield v P.stop)
  in
  let _, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:1 [ p ])
  in
  Alcotest.(check int) "no errors" 0
    (List.length (Analyze.Lint.errors diags))

(* ---- anonymity ---- *)

let anonymity_fig5_passes () =
  let config = Agreement.Instances.anonymous (params ~n:4 ~m:1 ~k:2) in
  Alcotest.(check int) "Fig 5 is anonymous" 0
    (List.length (Analyze.Lint.anonymity ~rounds:2 config))

let anonymity_fig3_would_fail () =
  (* Figure 3 stores (pref, id) pairs — id-dependent by design, which
     is why the registry exempts non-anonymous algorithms from the
     rule.  The checker must *detect* the dependence nonetheless. *)
  let config = Agreement.Instances.oneshot (params ~n:4 ~m:1 ~k:2) in
  Alcotest.(check bool) "Fig 3 writes pid-dependent values" true
    (Analyze.Lint.anonymity config <> [])

(* ---- registry sweep ---- *)

let registry_has_four_entries () =
  Alcotest.(check (list string))
    "registry names"
    [ "oneshot"; "repeated"; "anonymous"; "baseline" ]
    Analyze.Registry.names;
  List.iter
    (fun name ->
      match Bounds.Formulas.for_algorithm name with
      | Some _ -> ()
      | None -> Alcotest.fail ("no bounds cell for " ^ name))
    Analyze.Registry.names

let sweep_small_grid_green () =
  let rows = Analyze.Report.sweep ~max_n:4 () in
  Alcotest.(check bool) "grid non-trivial" true (List.length rows >= 20);
  List.iter
    (fun (r : Analyze.Report.row) ->
      if not r.Analyze.Report.ok then
        Alcotest.failf "violation: %s at %s (static %d, bound %d)"
          r.Analyze.Report.algo
          (Agreement.Params.to_string r.Analyze.Report.params)
          r.Analyze.Report.static_writes r.Analyze.Report.bound)
    rows

let sweep_checks_three_containments () =
  let r =
    Analyze.Report.row_for
      (Option.get (Analyze.Registry.find "oneshot"))
      (params ~n:5 ~m:2 ~k:3)
  in
  Alcotest.(check bool) "static <= bound" true r.Analyze.Report.static_within_bound;
  Alcotest.(check bool) "dynamic within static" true
    r.Analyze.Report.dynamic_within_static;
  Alcotest.(check bool) "dynamic <= static <= bound" true
    (r.Analyze.Report.dynamic_writes <= r.Analyze.Report.static_writes
    && r.Analyze.Report.static_writes <= r.Analyze.Report.bound)

(* ---- mutation tests ---- *)

let mutant_oob_rejected_with_witness () =
  let p = params ~n:4 ~m:1 ~k:2 in
  let mu = Analyze.Mutants.oob_oneshot in
  Alcotest.(check bool) "rejected" true (Analyze.Mutants.rejected mu p);
  let summary, _ = Analyze.Mutants.check mu p in
  let bound = mu.Analyze.Mutants.bound p in
  Alcotest.(check bool) "static footprint exceeds the bound" true
    (Analyze.Absint.IntSet.cardinal summary.Analyze.Absint.writes > bound);
  match Analyze.Absint.write_witness summary bound with
  | Some w ->
    Alcotest.(check bool) "witness path leads to the oob write" true
      (List.exists
         (fun line -> contains_substring line (Fmt.str "write R%d" bound))
         w)
  | None -> Alcotest.fail "no witness for the beyond-bound register"

let mutant_oob_dynamically_silent () =
  (* under a sequential schedule the rare branch never fires: the bug
     is invisible to this concrete run but caught statically *)
  let p = params ~n:4 ~m:1 ~k:2 in
  let mu = Analyze.Mutants.oob_oneshot in
  let config = mu.Analyze.Mutants.config p in
  let bound = mu.Analyze.Mutants.bound p in
  let result =
    Shm.Exec.run
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:10_000 4)
      ~inputs:(fun ~pid ~instance ->
        if instance = 1 then Some (vi (pid + 1)) else None)
      config
  in
  Alcotest.(check bool) "run quiesced" true
    (result.Shm.Exec.stopped = Shm.Exec.All_quiescent);
  Alcotest.(check bool) "dynamic registers stay within the bound" true
    (Shm.Memory.num_written (Shm.Config.mem result.Shm.Exec.config) <= bound)

let mutant_pid_leak_rejected_with_witness () =
  let p = params ~n:4 ~m:1 ~k:2 in
  let mu = Analyze.Mutants.pid_leak_anonymous in
  Alcotest.(check bool) "rejected" true (Analyze.Mutants.rejected mu p);
  let _, diags = Analyze.Mutants.check mu p in
  match
    List.find_opt
      (fun (d : Analyze.Lint.diag) -> d.rule = "anon/pid-dependent-value")
      (Analyze.Lint.errors diags)
  with
  | Some d -> Alcotest.(check bool) "witness non-empty" true (d.witness <> [])
  | None -> Alcotest.fail "anonymity rule did not fire"

(* ---- soundness property ----

   For random small loop-free protocols and random seeded schedules,
   every dynamically written register is in the static footprint.
   Value space is kept tiny so the abstract scan enumeration stays
   exhaustive — the regime where the analysis is exact. *)

type pstep =
  | SRead of int
  | SWrite of int * V.t
  | SWriteLast of int  (** target depends on the last value observed *)
  | SScan of int * int
  | SYield

let vhash v = match V.view v with V.Bot -> 0 | V.Int i -> i land 1 | _ -> 1

let compile ~registers steps =
  P.await (fun input ->
      let rec go steps last =
        match steps with
        | [] -> P.stop
        | SRead r :: tl -> P.read r (fun v -> go tl v)
        | SWrite (r, v) :: tl -> P.write r v (fun () -> go tl last)
        | SWriteLast b :: tl ->
          let r = (b + vhash last) mod registers in
          P.write r (vi 9) (fun () -> go tl last)
        | SScan (off, len) :: tl ->
          P.scan ~off ~len (fun view ->
              go tl (if len = 0 then last else view.(0)))
        | SYield :: tl -> P.yield last (go tl last)
      in
      go steps input)

let protocol_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun registers ->
    int_range 2 3 >>= fun n ->
    let step =
      frequency
        [
          (3, map (fun r -> SRead r) (int_bound (registers - 1)));
          ( 3,
            map2
              (fun r v -> SWrite (r, vi v))
              (int_bound (registers - 1))
              (int_bound 1) );
          (2, map (fun b -> SWriteLast b) (int_bound (registers - 1)));
          ( 2,
            int_bound (registers - 1) >>= fun off ->
            int_bound (registers - off) >>= fun len -> return (SScan (off, len))
          );
          (1, return SYield);
        ]
    in
    list_size (int_range 1 4) step >>= fun proto ->
    (* every process runs the same shape but distinct inputs, like the
       paper's algorithms *)
    return (registers, n, proto))

let pp_pstep = function
  | SRead r -> Fmt.str "read %d" r
  | SWrite (r, v) -> Fmt.str "write %d %s" r (V.to_string v)
  | SWriteLast b -> Fmt.str "write-last %d" b
  | SScan (o, l) -> Fmt.str "scan %d %d" o l
  | SYield -> "yield"

let protocol_arb =
  QCheck.make protocol_gen ~print:(fun (registers, n, proto) ->
      Fmt.str "registers=%d n=%d [%s]" registers n
        (String.concat "; " (List.map pp_pstep proto)))

let prop_static_footprint_sound =
  QCheck.Test.make ~name:"dynamic writes are contained in static footprint"
    ~count:60 protocol_arb (fun (registers, n, proto) ->
      let config =
        Shm.Config.create ~registers
          ~procs:(Array.init n (fun _ -> compile ~registers proto))
          ()
      in
      let summary =
        Analyze.Absint.analyze
          ~budgets:(Analyze.Absint.exhaustive ~registers ~n)
          config
      in
      let static = summary.Analyze.Absint.writes in
      let scheds =
        Shm.Schedule.round_robin n
        :: List.map (fun seed -> Shm.Schedule.random ~seed n) [ 1; 2; 3; 4 ]
      in
      List.for_all
        (fun sched ->
          let result =
            Shm.Exec.run ~sched ~max_steps:5_000
              ~inputs:(fun ~pid ~instance ->
                if instance = 1 then
                  Some (Agreement.Runner.default_input ~pid ~instance)
                else None)
              config
          in
          let dynamic =
            Shm.Memory.written_set (Shm.Config.mem result.Shm.Exec.config)
          in
          IS.for_all (fun r -> Analyze.Absint.IntSet.mem r static) dynamic)
        scheds)

(* ================================================================== *)
(* The dataflow engine: IR, analyses, flow lints, optimizer, and the
   conditional-independence relation (lib/analyze ISSUE 9 surface). *)

module Ir = Analyze.Ir
module DF = Analyze.Dataflow
module Ind = Analyze.Indep

let parse_ok s =
  match Ir.parse s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let ir_parse_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ir.to_string (parse_ok s)))
    [
      "r2 n2 : R0; W1<-in; D last";
      "r3 n3 : W0<-7; L2[W1<-7; R0]; D last";
      "r4 n2 : S1+2; L3[R2; W3<-last]; W0<-5; D 9";
    ];
  List.iter
    (fun s ->
      match Ir.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse accepted %S" s)
    [ ""; "r2 n2 : R0; garbage"; "r2 n2 R0"; "r2 n2 : W0<-; D last" ]

let ir_cfg_shape () =
  let cfg = Ir.cfg_of_prog (parse_ok "r2 n1 : R0; L2[W1<-last; R1]; D last") in
  (* points: 0 R0, 1 W1, 2 R1, 3 D.  The loop's last point branches
     back to its entry and forward to the decide; the decide is
     terminal. *)
  Alcotest.(check int) "points" 4 (Array.length cfg.Ir.points);
  Alcotest.(check (list int))
    "loop backedge + exit" [ 1; 3 ]
    (List.sort compare cfg.Ir.points.(2).Ir.succs);
  Alcotest.(check (list int)) "decide terminal" [] cfg.Ir.points.(3).Ir.succs;
  Alcotest.(check bool) "all reachable" true
    (Array.for_all Fun.id cfg.Ir.reachable);
  let cfg2 = Ir.cfg_of_prog (parse_ok "r2 n1 : D 1; W0<-2") in
  Alcotest.(check bool) "code after a decide is unreachable" false
    cfg2.Ir.reachable.(1)

let dataflow_const_dead_folded () =
  let d = DF.analyze (parse_ok "r3 n2 : W0<-7; W2<-9; R0; D last") in
  Alcotest.(check (list int)) "dead" [ 2 ] (DF.dead_regs d);
  Alcotest.(check bool) "not widened" false d.DF.widened;
  (match List.assoc_opt 0 (DF.const_regs d) with
  | Some v -> Alcotest.(check bool) "R0 const 7" true (V.equal v (vi 7))
  | None -> Alcotest.fail "R0 not reported constant");
  (* the decide (point 3) reads [last] straight off the constant R0 *)
  (match DF.folded_value d 3 with
  | Some v -> Alcotest.(check bool) "decide folds to 7" true (V.equal v (vi 7))
  | None -> Alcotest.fail "decide did not fold");
  let d2 = DF.analyze (parse_ok "r2 n2 : W0<-in; R0; D last") in
  Alcotest.(check bool) "input-fed register not constant" true
    (List.assoc_opt 0 (DF.const_regs d2) = None)

let dataflow_redundant () =
  (* the first read's observation is overwritten before any use *)
  let d = DF.analyze (parse_ok "r2 n2 : R0; R1; D last") in
  Alcotest.(check (list int)) "clobbered read" [ 0 ] (DF.redundant_points d);
  let d2 = DF.analyze (parse_ok "r2 n2 : R0; W1<-last; R1; D last") in
  Alcotest.(check (list int)) "consumed reads kept" []
    (DF.redundant_points d2)

let flow_lint_rules () =
  let d = DF.analyze (parse_ok "r3 n2 : W1<-5; R0; R0; D last") in
  let diags = Ind.lint d in
  let rules =
    List.map (fun (dg : Analyze.Lint.diag) -> dg.Analyze.Lint.rule) diags
  in
  List.iter
    (fun r -> Alcotest.(check bool) r true (List.mem r rules))
    [
      "flow/dead-register-write";
      "flow/redundant-scan";
      "flow/constant-register";
    ];
  List.iter
    (fun (dg : Analyze.Lint.diag) ->
      Alcotest.(check bool)
        (dg.Analyze.Lint.rule ^ ": non-empty witness")
        true
        (dg.Analyze.Lint.witness <> []))
    diags;
  let clean = DF.analyze (parse_ok "r1 n2 : W0<-in; R0; D last") in
  Alcotest.(check int) "clean protocol" 0 (List.length (Ind.lint clean))

let optim_rewrites () =
  let module Opt = Analyze.Optim in
  let r = Opt.optimize (parse_ok "r3 n2 : W2<-9; W0<-4; R0; D last") in
  Alcotest.(check string) "fully folded" "r3 n2 : D 4"
    (Ir.to_string r.Opt.optimized);
  Alcotest.(check bool) "some fold" true (r.Opt.folded >= 1);
  Alcotest.(check bool) "some drop" true (r.Opt.dropped >= 1);
  let id = Opt.optimize (parse_ok "r1 n2 : W0<-in; R0; D last") in
  Alcotest.(check string) "already-optimal program unchanged"
    "r1 n2 : W0<-in; R0; D last"
    (Ir.to_string id.Opt.optimized);
  Alcotest.(check int) "no iterations" 0 id.Opt.iterations

let sarif_document () =
  let d = DF.analyze (parse_ok "r3 n2 : W1<-5; R0; R0; D last") in
  let results = List.map (fun dg -> ("protocol:test", dg)) (Ind.lint d) in
  let s = Analyze.Sarif.to_string ~tool_version:"test" results in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains_substring s needle))
    [
      "2.1.0";
      "sa_run-analyze";
      "flow/dead-register-write";
      "codeFlows";
      "artifactLocation";
      "protocol:test";
    ]

let refinement_units () =
  let t = Alcotest.(check bool) in
  let refine = Ind.refinement () in
  let mem = Shm.Memory.write (Shm.Memory.create 3) 0 (vi 3) in
  t "equal writes commute" true
    (refine ~mem (P.Write (1, vi 9)) (P.Write (1, vi 9)));
  t "unequal writes do not" false
    (refine ~mem (P.Write (1, vi 9)) (P.Write (1, vi 8)));
  t "different registers are footprint territory" false
    (refine ~mem (P.Write (0, vi 3)) (P.Write (1, vi 3)));
  t "no-op write vs read" true (refine ~mem (P.Write (0, vi 3)) (P.Read 0));
  t "symmetric" true (refine ~mem (P.Read 0) (P.Write (0, vi 3)));
  t "changing write vs read" false
    (refine ~mem (P.Write (0, vi 4)) (P.Read 0));
  t "no-op write vs covering scan" true
    (refine ~mem (P.Write (0, vi 3)) (P.Scan (0, 2)));
  t "no-op write vs non-covering scan" false
    (refine ~mem (P.Write (0, vi 3)) (P.Scan (1, 2)));
  (* the constant-register certificate is re-checked at the call site:
     writes that disagree with it never qualify *)
  let facts = { Ind.empty with Ind.const_regs = [ (2, vi 6) ] } in
  let refine' = Ind.refinement ~facts () in
  t "certified writes commute" true
    (refine' ~mem (P.Write (2, vi 6)) (P.Write (2, vi 6)));
  t "certificate mismatch rejected" false
    (refine' ~mem (P.Write (2, vi 5)) (P.Write (2, vi 6)))

let indep_facts_of_prog () =
  let facts =
    Ind.of_prog (parse_ok "r3 n3 : W0<-3; W2<-8; L3[W0<-3; R0]; D last")
  in
  Alcotest.(check bool) "R0 certified constant" true
    (match List.assoc_opt 0 facts.Ind.const_regs with
    | Some v -> V.equal v (vi 3)
    | None -> false);
  Alcotest.(check (list int)) "dead register" [ 2 ] facts.Ind.dead_regs;
  Alcotest.(check bool) "not widened" false facts.Ind.widened

(* ?static_indep end-to-end: identical verdict, strictly fewer states
   on a protocol whose writes are all no-ops after the first. *)
let dpor_static_indep_prunes () =
  let prog = parse_ok "r2 n3 : W0<-3; L3[W0<-3; R0]; D last" in
  let facts = Ind.of_prog prog in
  let check c =
    match Spec.Properties.agreement_errors ~k:1 c with
    | [] -> Ok ()
    | e :: _ -> Error e
  in
  let run static_indep =
    Spec.Modelcheck.run
      ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 })
      ~depth:10 ~inputs:Fuzz.Gen.inputs ?static_indep ~check
      (Fuzz.Gen.config prog)
  in
  let base = run None and refined = run (Some (Ind.refinement ~facts ())) in
  (match (base, refined) with
  | Spec.Modelcheck.Ok_bounded _, Spec.Modelcheck.Ok_bounded _ -> ()
  | _ -> Alcotest.fail "verdicts diverged (or a counterexample appeared)");
  let explored o = (Spec.Modelcheck.stats_of o).Spec.Modelcheck.explored in
  Alcotest.(check bool)
    (Fmt.str "refined explores fewer states (%d < %d)" (explored refined)
       (explored base))
    true
    (explored refined < explored base)

(* The soundness property behind the sleep-set refinement: whenever
   [Indep.refinement] accepts a pair of poised ops, executing them in
   either order yields configurations with identical canonical
   representations ([Statehash.repr]: memory dump + per-process
   observation digests + instances + io) — on both memory backends.
   States are drawn by walking a generated schedule. *)
let prop_static_indep_commutes =
  let print (p, s) =
    Fmt.str "%s | %s" (Fuzz.Gen.to_string p) (Fuzz.Gen.schedule_to_string s)
  in
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Shm.Rng.create seed in
        let p = Fuzz.Gen.generate rng in
        (p, Fuzz.Gen.gen_schedule rng ~n:p.Ir.n))
      QCheck.Gen.(0 -- 1_000_000)
  in
  QCheck.Test.make ~count:60
    ~name:"statically-independent enabled pairs commute (both backends)"
    (QCheck.make ~print gen)
    (fun (p, sched) ->
      let refine = Ind.refinement ~facts:(Ind.of_prog p) () in
      let diamonds_ok config =
        let n = Shm.Config.n config in
        let mem = Shm.Config.mem config in
        let ok = ref true in
        for a = 0 to n - 1 do
          for b = a + 1 to n - 1 do
            match
              ( P.poised_op (Shm.Config.proc config a),
                P.poised_op (Shm.Config.proc config b) )
            with
            | Some oa, Some ob when refine ~mem oa ob ->
              let run order =
                let base = Shm.Config.unshare config in
                List.fold_left
                  (fun (c, h) pid ->
                    let c', ev = Shm.Config.step c pid in
                    (c', Spec.Statehash.record h ~before:c c' ev))
                  (base, Spec.Statehash.create ~audit:true base)
                  order
              in
              let c1, h1 = run [ a; b ] and c2, h2 = run [ b; a ] in
              if
                not
                  (String.equal
                     (Spec.Statehash.repr h1 c1)
                     (Spec.Statehash.repr h2 c2))
              then ok := false
            | _ -> ()
          done
        done;
        !ok
      in
      List.for_all
        (fun backend ->
          let rec walk config = function
            | [] -> true
            | pid :: rest ->
              diamonds_ok config
              && walk
                   (Spec.Counterex.step_pid ~inputs:Fuzz.Gen.inputs config pid)
                   rest
          in
          walk (Fuzz.Gen.config ~backend p) sched)
        [ Shm.Memory.Persistent; Shm.Memory.Journaled ])

(* The acceptance sweeps: the optimizer's simulation oracle and the
   independence-soundness oracle stay silent on ≥ 100 generated
   protocols, deterministically under SA_TEST_SEED. *)
let oracle_sweep kind count () =
  let rng = Shm.Rng.create base_seed in
  for i = 1 to count do
    let p = Fuzz.Gen.generate rng in
    let s = Fuzz.Gen.gen_schedule rng ~n:p.Ir.n in
    match Fuzz.Oracle.check kind p s with
    | None -> ()
    | Some msg ->
      Alcotest.failf "divergence at protocol %d: %s@.%s | %s" i msg
        (Fuzz.Gen.to_string p)
        (Fuzz.Gen.schedule_to_string s)
  done

let suite =
  [
    test "abstract stepping hooks" hooks_feed;
    test "footprint, dead registers, witnesses" absint_footprint_and_dead;
    test "cross-process value flow" absint_cross_process_flow;
    test "lint: write-after-decide" lint_write_after_decide;
    test "lint: scan out of bounds" lint_oob_scan;
    test "lint: write out of bounds" lint_oob_write;
    test "lint: unbounded solo loop" lint_unbounded_solo;
    test "lint: honest program is clean" lint_clean_on_honest_program;
    test "anonymity: Figure 5 passes" anonymity_fig5_passes;
    test "anonymity: Figure 3 is id-dependent (hence exempt)"
      anonymity_fig3_would_fail;
    test "registry: four entries, bounds bound" registry_has_four_entries;
    test "sweep: small grid green" sweep_small_grid_green;
    test "sweep: three containments" sweep_checks_three_containments;
    test "mutant: oob write rejected with witness" mutant_oob_rejected_with_witness;
    test "mutant: oob write dynamically silent" mutant_oob_dynamically_silent;
    test "mutant: pid leak rejected with witness"
      mutant_pid_leak_rejected_with_witness;
    to_alcotest prop_static_footprint_sound;
    test "ir: parse/print round-trip and errors" ir_parse_roundtrip;
    test "ir: cfg shape (backedge, terminal decide)" ir_cfg_shape;
    test "dataflow: constants, dead registers, folding"
      dataflow_const_dead_folded;
    test "dataflow: redundant observations" dataflow_redundant;
    test "lint: flow/* rules fire with witnesses" flow_lint_rules;
    test "optimizer: folds, drops, optimal fixpoint" optim_rewrites;
    test "sarif: well-formed 2.1.0 document" sarif_document;
    test "indep: refinement unit rules" refinement_units;
    test "indep: facts from a protocol" indep_facts_of_prog;
    test "dpor: static independence prunes, verdict unchanged"
      dpor_static_indep_prunes;
    test "oracle: optimizer equivalence on 120 protocols"
      (oracle_sweep Fuzz.Oracle.Optim 120);
    test "oracle: independence soundness on 120 protocols"
      (oracle_sweep Fuzz.Oracle.Indep 120);
    to_alcotest prop_static_indep_commutes;
  ]
