(* The static analyzer (lib/analyze): abstract-interpretation
   footprints, lints, registry sweep, mutation tests, and the
   soundness property "dynamically written registers are contained in
   the static footprint" on random protocols under random schedules. *)

open Helpers
module P = Shm.Program
module V = Shm.Value

module IS = Set.Make (Int)

let to_alcotest = Helpers.qcheck_to_alcotest

let params ~n ~m ~k = Agreement.Params.make ~n ~m ~k

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- abstract stepping hooks ---- *)

let hooks_feed () =
  let p = P.read 0 (fun v -> P.yield v P.stop) in
  (match P.feed_read p (vi 7) with
  | Some (P.Yield (v, P.Stop)) -> Alcotest.(check bool) "read fed" true (V.equal v (vi 7))
  | _ -> Alcotest.fail "feed_read");
  Alcotest.(check bool) "wrong shape rejected" true (P.feed p P.RUnit = None);
  let w = P.write 1 (vi 2) (fun () -> P.stop) in
  (match P.feed_write_ack w with
  | Some P.Stop -> ()
  | _ -> Alcotest.fail "feed_write_ack");
  let s = P.scan ~off:0 ~len:2 (fun view -> P.yield view.(1) P.stop) in
  (match P.feed_scan s [| V.bot; vi 9 |] with
  | Some (P.Yield (v, _)) -> Alcotest.(check bool) "scan fed" true (V.equal v (vi 9))
  | _ -> Alcotest.fail "feed_scan");
  Alcotest.(check bool) "scan length checked" true
    (P.feed_scan s [| V.bot |] = None);
  let a = P.await (fun v -> P.yield v P.stop) in
  (match P.start a (vi 3) with
  | Some (P.Yield _) -> ()
  | _ -> Alcotest.fail "start");
  match P.take_yield (P.yield (vi 1) P.stop) with
  | Some (v, P.Stop) -> Alcotest.(check bool) "take_yield" true (V.equal v (vi 1))
  | _ -> Alcotest.fail "take_yield"

(* ---- interpreter on hand-rolled programs ---- *)

let config_of ~registers progs =
  Shm.Config.create ~registers ~procs:(Array.of_list progs) ()

let absint_footprint_and_dead () =
  (* p0 writes R0 then R1; R2 is never written by anyone *)
  let p0 =
    P.await (fun v ->
        P.write 0 v @@ fun () ->
        P.write 1 (vi 5) @@ fun () -> P.yield v P.stop)
  in
  let p1 = P.await (fun _ -> P.read 1 (fun v -> P.yield v P.stop)) in
  let s =
    Analyze.Absint.analyze
      ~budgets:(Analyze.Absint.exhaustive ~registers:3 ~n:2)
      (config_of ~registers:3 [ p0; p1 ])
  in
  Alcotest.(check (list int)) "writes" [ 0; 1 ]
    (Analyze.Absint.IntSet.elements s.Analyze.Absint.writes);
  Alcotest.(check (list int)) "reads" [ 1 ]
    (Analyze.Absint.IntSet.elements s.Analyze.Absint.reads);
  Alcotest.(check (list int)) "dead" [ 2 ]
    (Analyze.Absint.IntSet.elements s.Analyze.Absint.dead);
  Alcotest.(check bool) "converged" true s.Analyze.Absint.converged;
  (match Analyze.Absint.write_witness s 1 with
  | Some w -> Alcotest.(check bool) "witness non-empty" true (w <> [])
  | None -> Alcotest.fail "no witness for R1");
  Alcotest.(check bool) "no witness for dead register" true
    (Analyze.Absint.write_witness s 2 = None)

let absint_cross_process_flow () =
  (* p1's write target depends on the value p0 wrote: the joint
     fixpoint must propagate p0's value into p1's read. *)
  let p0 = P.await (fun _ -> P.write 0 (vi 1) @@ fun () -> P.stop) in
  let p1 =
    P.await (fun _ ->
        P.read 0 (fun v ->
            let target = match V.view v with V.Int 1 -> 2 | _ -> 1 in
            P.write target (vi 9) @@ fun () -> P.stop))
  in
  let s =
    Analyze.Absint.analyze
      ~budgets:(Analyze.Absint.exhaustive ~registers:3 ~n:2)
      (config_of ~registers:3 [ p0; p1 ])
  in
  (* both branches of p1 must be in the footprint: R1 (read ⊥) and R2
     (read p0's 1) *)
  Alcotest.(check (list int)) "writes cover both branches" [ 0; 1; 2 ]
    (Analyze.Absint.IntSet.elements s.Analyze.Absint.writes)

(* ---- lints ---- *)

let lint_write_after_decide () =
  let p =
    P.await (fun v ->
        P.write 0 v @@ fun () ->
        P.yield v (P.write 1 (vi 8) @@ fun () -> P.stop))
  in
  let s, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:2 [ p ])
  in
  ignore s;
  Alcotest.(check bool) "write-after-decide fires" true
    (List.exists
       (fun (d : Analyze.Lint.diag) -> d.rule = "decide/write-after-decide")
       (Analyze.Lint.errors diags))

let lint_oob_scan () =
  (* scan range sticks out of memory *)
  let p = P.await (fun _ -> P.scan ~off:1 ~len:3 (fun _ -> P.stop)) in
  let _, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:3 [ p ])
  in
  Alcotest.(check bool) "oob scan fires" true
    (List.exists
       (fun (d : Analyze.Lint.diag) ->
         d.rule = "space/out-of-bounds" && d.witness <> [])
       (Analyze.Lint.errors diags))

let lint_oob_write () =
  let p = P.await (fun v -> P.write 5 v @@ fun () -> P.yield v P.stop) in
  let _, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:2 [ p ])
  in
  Alcotest.(check bool) "oob write fires" true
    (List.exists
       (fun (d : Analyze.Lint.diag) -> d.rule = "space/out-of-bounds")
       (Analyze.Lint.errors diags))

let lint_unbounded_solo () =
  let rec spin i = P.write 0 (vi i) @@ fun () -> spin (1 - i) in
  let p = P.await (fun _ -> spin 0) in
  let _, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:1 [ p ])
  in
  Alcotest.(check bool) "unbounded solo loop fires" true
    (List.exists
       (fun (d : Analyze.Lint.diag) -> d.rule = "loop/unbounded-solo")
       (Analyze.Lint.errors diags))

let lint_clean_on_honest_program () =
  let p =
    P.await (fun v -> P.write 0 v @@ fun () -> P.yield v P.stop)
  in
  let _, diags =
    Analyze.Lint.check ~anonymous:false (config_of ~registers:1 [ p ])
  in
  Alcotest.(check int) "no errors" 0
    (List.length (Analyze.Lint.errors diags))

(* ---- anonymity ---- *)

let anonymity_fig5_passes () =
  let config = Agreement.Instances.anonymous (params ~n:4 ~m:1 ~k:2) in
  Alcotest.(check int) "Fig 5 is anonymous" 0
    (List.length (Analyze.Lint.anonymity ~rounds:2 config))

let anonymity_fig3_would_fail () =
  (* Figure 3 stores (pref, id) pairs — id-dependent by design, which
     is why the registry exempts non-anonymous algorithms from the
     rule.  The checker must *detect* the dependence nonetheless. *)
  let config = Agreement.Instances.oneshot (params ~n:4 ~m:1 ~k:2) in
  Alcotest.(check bool) "Fig 3 writes pid-dependent values" true
    (Analyze.Lint.anonymity config <> [])

(* ---- registry sweep ---- *)

let registry_has_four_entries () =
  Alcotest.(check (list string))
    "registry names"
    [ "oneshot"; "repeated"; "anonymous"; "baseline" ]
    Analyze.Registry.names;
  List.iter
    (fun name ->
      match Bounds.Formulas.for_algorithm name with
      | Some _ -> ()
      | None -> Alcotest.fail ("no bounds cell for " ^ name))
    Analyze.Registry.names

let sweep_small_grid_green () =
  let rows = Analyze.Report.sweep ~max_n:4 () in
  Alcotest.(check bool) "grid non-trivial" true (List.length rows >= 20);
  List.iter
    (fun (r : Analyze.Report.row) ->
      if not r.Analyze.Report.ok then
        Alcotest.failf "violation: %s at %s (static %d, bound %d)"
          r.Analyze.Report.algo
          (Agreement.Params.to_string r.Analyze.Report.params)
          r.Analyze.Report.static_writes r.Analyze.Report.bound)
    rows

let sweep_checks_three_containments () =
  let r =
    Analyze.Report.row_for
      (Option.get (Analyze.Registry.find "oneshot"))
      (params ~n:5 ~m:2 ~k:3)
  in
  Alcotest.(check bool) "static <= bound" true r.Analyze.Report.static_within_bound;
  Alcotest.(check bool) "dynamic within static" true
    r.Analyze.Report.dynamic_within_static;
  Alcotest.(check bool) "dynamic <= static <= bound" true
    (r.Analyze.Report.dynamic_writes <= r.Analyze.Report.static_writes
    && r.Analyze.Report.static_writes <= r.Analyze.Report.bound)

(* ---- mutation tests ---- *)

let mutant_oob_rejected_with_witness () =
  let p = params ~n:4 ~m:1 ~k:2 in
  let mu = Analyze.Mutants.oob_oneshot in
  Alcotest.(check bool) "rejected" true (Analyze.Mutants.rejected mu p);
  let summary, _ = Analyze.Mutants.check mu p in
  let bound = mu.Analyze.Mutants.bound p in
  Alcotest.(check bool) "static footprint exceeds the bound" true
    (Analyze.Absint.IntSet.cardinal summary.Analyze.Absint.writes > bound);
  match Analyze.Absint.write_witness summary bound with
  | Some w ->
    Alcotest.(check bool) "witness path leads to the oob write" true
      (List.exists
         (fun line -> contains_substring line (Fmt.str "write R%d" bound))
         w)
  | None -> Alcotest.fail "no witness for the beyond-bound register"

let mutant_oob_dynamically_silent () =
  (* under a sequential schedule the rare branch never fires: the bug
     is invisible to this concrete run but caught statically *)
  let p = params ~n:4 ~m:1 ~k:2 in
  let mu = Analyze.Mutants.oob_oneshot in
  let config = mu.Analyze.Mutants.config p in
  let bound = mu.Analyze.Mutants.bound p in
  let result =
    Shm.Exec.run
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:10_000 4)
      ~inputs:(fun ~pid ~instance ->
        if instance = 1 then Some (vi (pid + 1)) else None)
      config
  in
  Alcotest.(check bool) "run quiesced" true
    (result.Shm.Exec.stopped = Shm.Exec.All_quiescent);
  Alcotest.(check bool) "dynamic registers stay within the bound" true
    (Shm.Memory.num_written (Shm.Config.mem result.Shm.Exec.config) <= bound)

let mutant_pid_leak_rejected_with_witness () =
  let p = params ~n:4 ~m:1 ~k:2 in
  let mu = Analyze.Mutants.pid_leak_anonymous in
  Alcotest.(check bool) "rejected" true (Analyze.Mutants.rejected mu p);
  let _, diags = Analyze.Mutants.check mu p in
  match
    List.find_opt
      (fun (d : Analyze.Lint.diag) -> d.rule = "anon/pid-dependent-value")
      (Analyze.Lint.errors diags)
  with
  | Some d -> Alcotest.(check bool) "witness non-empty" true (d.witness <> [])
  | None -> Alcotest.fail "anonymity rule did not fire"

(* ---- soundness property ----

   For random small loop-free protocols and random seeded schedules,
   every dynamically written register is in the static footprint.
   Value space is kept tiny so the abstract scan enumeration stays
   exhaustive — the regime where the analysis is exact. *)

type pstep =
  | SRead of int
  | SWrite of int * V.t
  | SWriteLast of int  (** target depends on the last value observed *)
  | SScan of int * int
  | SYield

let vhash v = match V.view v with V.Bot -> 0 | V.Int i -> i land 1 | _ -> 1

let compile ~registers steps =
  P.await (fun input ->
      let rec go steps last =
        match steps with
        | [] -> P.stop
        | SRead r :: tl -> P.read r (fun v -> go tl v)
        | SWrite (r, v) :: tl -> P.write r v (fun () -> go tl last)
        | SWriteLast b :: tl ->
          let r = (b + vhash last) mod registers in
          P.write r (vi 9) (fun () -> go tl last)
        | SScan (off, len) :: tl ->
          P.scan ~off ~len (fun view ->
              go tl (if len = 0 then last else view.(0)))
        | SYield :: tl -> P.yield last (go tl last)
      in
      go steps input)

let protocol_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun registers ->
    int_range 2 3 >>= fun n ->
    let step =
      frequency
        [
          (3, map (fun r -> SRead r) (int_bound (registers - 1)));
          ( 3,
            map2
              (fun r v -> SWrite (r, vi v))
              (int_bound (registers - 1))
              (int_bound 1) );
          (2, map (fun b -> SWriteLast b) (int_bound (registers - 1)));
          ( 2,
            int_bound (registers - 1) >>= fun off ->
            int_bound (registers - off) >>= fun len -> return (SScan (off, len))
          );
          (1, return SYield);
        ]
    in
    list_size (int_range 1 4) step >>= fun proto ->
    (* every process runs the same shape but distinct inputs, like the
       paper's algorithms *)
    return (registers, n, proto))

let pp_pstep = function
  | SRead r -> Fmt.str "read %d" r
  | SWrite (r, v) -> Fmt.str "write %d %s" r (V.to_string v)
  | SWriteLast b -> Fmt.str "write-last %d" b
  | SScan (o, l) -> Fmt.str "scan %d %d" o l
  | SYield -> "yield"

let protocol_arb =
  QCheck.make protocol_gen ~print:(fun (registers, n, proto) ->
      Fmt.str "registers=%d n=%d [%s]" registers n
        (String.concat "; " (List.map pp_pstep proto)))

let prop_static_footprint_sound =
  QCheck.Test.make ~name:"dynamic writes are contained in static footprint"
    ~count:60 protocol_arb (fun (registers, n, proto) ->
      let config =
        Shm.Config.create ~registers
          ~procs:(Array.init n (fun _ -> compile ~registers proto))
          ()
      in
      let summary =
        Analyze.Absint.analyze
          ~budgets:(Analyze.Absint.exhaustive ~registers ~n)
          config
      in
      let static = summary.Analyze.Absint.writes in
      let scheds =
        Shm.Schedule.round_robin n
        :: List.map (fun seed -> Shm.Schedule.random ~seed n) [ 1; 2; 3; 4 ]
      in
      List.for_all
        (fun sched ->
          let result =
            Shm.Exec.run ~sched ~max_steps:5_000
              ~inputs:(fun ~pid ~instance ->
                if instance = 1 then
                  Some (Agreement.Runner.default_input ~pid ~instance)
                else None)
              config
          in
          let dynamic =
            Shm.Memory.written_set (Shm.Config.mem result.Shm.Exec.config)
          in
          IS.for_all (fun r -> Analyze.Absint.IntSet.mem r static) dynamic)
        scheds)

let suite =
  [
    test "abstract stepping hooks" hooks_feed;
    test "footprint, dead registers, witnesses" absint_footprint_and_dead;
    test "cross-process value flow" absint_cross_process_flow;
    test "lint: write-after-decide" lint_write_after_decide;
    test "lint: scan out of bounds" lint_oob_scan;
    test "lint: write out of bounds" lint_oob_write;
    test "lint: unbounded solo loop" lint_unbounded_solo;
    test "lint: honest program is clean" lint_clean_on_honest_program;
    test "anonymity: Figure 5 passes" anonymity_fig5_passes;
    test "anonymity: Figure 3 is id-dependent (hence exempt)"
      anonymity_fig3_would_fail;
    test "registry: four entries, bounds bound" registry_has_four_entries;
    test "sweep: small grid green" sweep_small_grid_green;
    test "sweep: three containments" sweep_checks_three_containments;
    test "mutant: oob write rejected with witness" mutant_oob_rejected_with_witness;
    test "mutant: oob write dynamically silent" mutant_oob_dynamically_silent;
    test "mutant: pid leak rejected with witness"
      mutant_pid_leak_rejected_with_witness;
    to_alcotest prop_static_footprint_sound;
  ]
