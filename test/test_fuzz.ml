(* The fuzzing layer (lib/fuzz): generator well-formedness, corpus
   replay determinism, mutation-operator closure, coverage-signature
   stability, oracle cleanliness on generated inputs, joint 1-minimal
   shrinking, and the seeded-mutant regression sweep. *)

open Helpers
module G = Fuzz.Gen
module R = Shm.Rng

(* Drain [count] generated (program, schedule) pairs from one PRNG. *)
let gen_pairs ~seed count =
  let rng = R.create seed in
  List.init count (fun _ ->
      let p = G.generate rng in
      (p, G.gen_schedule rng ~n:p.G.n))

(* ---- generator well-formedness ---- *)

let gen_well_formed seed =
  List.iter
    (fun ((p : G.program), sched) ->
      Alcotest.(check bool) "registers >= 1" true (p.G.registers >= 1);
      Alcotest.(check bool) "n >= 2" true (p.G.n >= 2);
      Alcotest.(check int) "no out-of-bounds step" 0 (List.length (G.oob_steps p));
      Alcotest.(check bool) "bounded flat length" true
        (G.flat_length p >= 1 && G.flat_length p < 1000);
      (match List.rev p.G.steps with
      | G.Decide _ :: _ -> ()
      | _ -> Alcotest.failf "program does not end in Decide: %s" (G.to_string p));
      List.iter
        (fun pid ->
          Alcotest.(check bool) "schedule pids in range" true
            (pid >= 0 && pid < p.G.n))
        sched)
    (gen_pairs ~seed 200)

let gen_solo_termination seed =
  (* a solo process must decide within its own flat fuel: loops are
     bounded by construction, so round-robin with generous fuel
     quiesces and every process yields exactly once *)
  List.iter
    (fun ((p : G.program), _) ->
      let result =
        Shm.Exec.run
          ~sched:(Shm.Schedule.round_robin p.G.n)
          ~inputs:G.inputs
          ~max_steps:(p.G.n * (G.flat_length p + 2))
          (G.config p)
      in
      (match result.Shm.Exec.stopped with
      | Shm.Exec.All_quiescent -> ()
      | Shm.Exec.Fuel_exhausted ->
        Alcotest.failf "did not quiesce: %s" (G.to_string p));
      let outputs = Shm.Config.outputs result.Shm.Exec.config in
      Alcotest.(check int) "every process decided once" p.G.n
        (List.length outputs))
    (gen_pairs ~seed 100)

(* QCheck property (the ISSUE-level contract): the generator never
   emits a program the lint's out-of-bounds rule rejects. *)
let prop_gen_never_oob =
  QCheck.Test.make ~count:150 ~name:"generated programs pass the oob lint"
    QCheck.(make Gen.int)
    (fun seed ->
      let p = G.generate (R.create seed) in
      let _, diags = Analyze.Lint.check ~anonymous:false (G.config p) in
      List.for_all
        (fun (d : Analyze.Lint.diag) -> d.Analyze.Lint.rule <> "space/out-of-bounds")
        (Analyze.Lint.errors diags))

let gen_inputs_oneshot _seed =
  Alcotest.(check bool) "instance 1 has an input" true
    (Option.is_some (G.inputs ~pid:0 ~instance:1));
  Alcotest.(check bool) "instance 2 has none (one-shot)" true
    (Option.is_none (G.inputs ~pid:0 ~instance:2))

let run_respects_schedule seed =
  List.iter
    (fun ((p : G.program), sched) ->
      let result = G.run p sched in
      Alcotest.(check bool) "trace no longer than the schedule" true
        (List.length result.Shm.Exec.trace <= List.length sched);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "trace pid was scheduled" true
            (List.mem (Shm.Event.pid ev) sched))
        result.Shm.Exec.trace)
    (gen_pairs ~seed 50)

(* ---- corpus ---- *)

let render (p, s) = G.to_string p ^ " | " ^ G.schedule_to_string s

let corpus_replay_determinism seed =
  (* two corpora from the same seed propose byte-identical campaigns,
     including after records reshape the selection distribution *)
  let drive n =
    let c = Fuzz.Corpus.create ~seed () in
    List.init n (fun i ->
        let p, s = Fuzz.Corpus.next c in
        if i mod 3 = 0 then Fuzz.Corpus.record c p s ~credit:(1 + (i mod 5));
        render (p, s))
  in
  Alcotest.(check (list string)) "replayed campaign identical" (drive 60) (drive 60)

let corpus_admission seed =
  let c = Fuzz.Corpus.create ~seed () in
  let p, s = Fuzz.Corpus.next c in
  Fuzz.Corpus.record c p s ~credit:0;
  Alcotest.(check int) "credit 0 not admitted" 0 (Fuzz.Corpus.size c);
  Fuzz.Corpus.record c p s ~credit:3;
  Alcotest.(check int) "credit > 0 admitted" 1 (Fuzz.Corpus.size c);
  match Fuzz.Corpus.entries c with
  | [ e ] -> Alcotest.(check int) "credit recorded" 3 e.Fuzz.Corpus.credit
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

let mutation_closure seed =
  (* every operator output is as well-formed as a generated program:
     no out-of-bounds access, still compiles and runs *)
  let rng = R.create seed in
  List.iter
    (fun ((p : G.program), sched) ->
      let q = G.generate rng in
      let mutants =
        [
          ("splice", Fuzz.Corpus.splice rng p q);
          ("insert", Fuzz.Corpus.insert_step rng p);
          ("delete", Fuzz.Corpus.delete_step rng p);
          ("renumber", Fuzz.Corpus.renumber rng p);
        ]
      in
      List.iter
        (fun (op, (m : G.program)) ->
          if G.oob_steps m <> [] then
            Alcotest.failf "%s broke bounds: %s -> %s" op (G.to_string p)
              (G.to_string m);
          ignore (G.run m (Fuzz.Corpus.mutate_schedule rng ~n:m.G.n sched)))
        mutants;
      let sched' = Fuzz.Corpus.mutate_schedule rng ~n:p.G.n sched in
      Alcotest.(check bool) "mutated schedule non-degenerate" true
        (List.length sched' <= 4 * G.default_sizes.G.max_sched))
    (gen_pairs ~seed 60)

(* ---- coverage ---- *)

let coverage_signature_stable seed =
  List.iter
    (fun (p, sched) ->
      let a = Fuzz.Coverage.signature p sched in
      let b = Fuzz.Coverage.signature p sched in
      Alcotest.(check bool) "same input, same signature" true
        (Fuzz.Coverage.equal a b);
      Alcotest.(check bool) "signature non-empty" true
        (Fuzz.Coverage.cardinal a > 0))
    (gen_pairs ~seed 30)

let coverage_accumulation seed =
  let p, sched = List.hd (gen_pairs ~seed 1) in
  let t = Fuzz.Coverage.signature p sched in
  let acc = Fuzz.Coverage.acc_create () in
  Alcotest.(check int) "first add contributes every bit"
    (Fuzz.Coverage.cardinal t)
    (Fuzz.Coverage.add acc t);
  Alcotest.(check int) "second add contributes nothing" 0
    (Fuzz.Coverage.add acc t);
  Alcotest.(check int) "accumulator holds the union"
    (Fuzz.Coverage.cardinal t)
    (Fuzz.Coverage.acc_cardinal acc)

(* ---- oracles ---- *)

let oracles_pass_on_generated_inputs seed =
  List.iter
    (fun (p, sched) ->
      List.iter
        (fun oracle ->
          match Fuzz.Oracle.check oracle p sched with
          | None -> ()
          | Some msg ->
            Alcotest.failf "%s oracle diverged on %s: %s"
              (Fuzz.Oracle.name oracle) (render (p, sched)) msg)
        Fuzz.Oracle.all)
    (gen_pairs ~seed 25)

let linearize_oracle_scan_heavy _seed =
  (* a scan-heavy handcrafted program: full-range scans reconstruct
     views, both checker modes must agree it linearizes *)
  let p =
    {
      G.registers = 2;
      n = 2;
      steps =
        [ G.Write (0, G.Const 1); G.Scan (0, 2); G.Write (1, G.Last); G.Scan (0, 2); G.Decide G.Last ];
    }
  in
  let sched = [ 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1 ] in
  match Fuzz.Oracle.check Fuzz.Oracle.Linearize p sched with
  | None -> ()
  | Some msg -> Alcotest.failf "linearize modes disagree: %s" msg

(* ---- joint shrinking ---- *)

(* Synthetic monotone divergence: "program has >= 2 top-level writes
   and the schedule names pid 0 at least 3 times".  The unique
   1-minimal witness shape is 2 writes + 3 zeros. *)
let synthetic_check (p : G.program) sched =
  let writes =
    List.length
      (List.filter (function G.Write _ -> true | _ -> false) p.G.steps)
  in
  let zeros = List.length (List.filter (( = ) 0) sched) in
  if writes >= 2 && zeros >= 3 then Some "synthetic" else None

let shrunk_witness_is_1_minimal seed =
  let p =
    {
      G.registers = 2;
      n = 2;
      steps =
        [
          G.Read 0; G.Write (0, G.Input); G.Scan (0, 2); G.Write (1, G.Last);
          G.Read 1; G.Write (0, G.Const 1); G.Decide G.Last;
        ];
    }
  in
  let sched = [ 0; 1; 0; 1; 1; 0; 1; 0 ] in
  Alcotest.(check bool) "original pair fails" true
    (synthetic_check p sched <> None);
  match
    Fuzz.Driver.shrink_with ~check:synthetic_check ~kind:Fuzz.Oracle.Analyzer
      ~seed ~found_at:1 p sched
  with
  | None -> Alcotest.fail "shrink lost the divergence"
  | Some w ->
    (* the witness still fails its oracle *)
    Alcotest.(check bool) "shrunk witness re-fails" true
      (synthetic_check w.Fuzz.Driver.program w.Fuzz.Driver.schedule <> None);
    (* exact minimal shape *)
    Alcotest.(check int) "minimal program: 2 steps" 2
      (List.length w.Fuzz.Driver.program.G.steps);
    Alcotest.(check int) "minimal schedule: 3 entries" 3
      (List.length w.Fuzz.Driver.schedule);
    (* 1-minimality: dropping any single surviving program step or
       schedule entry loses the divergence *)
    let steps = w.Fuzz.Driver.program.G.steps in
    List.iteri
      (fun i _ ->
        let p' =
          {
            w.Fuzz.Driver.program with
            G.steps = List.filteri (fun j _ -> j <> i) steps;
          }
        in
        Alcotest.(check bool) "dropping a program step loses the failure" true
          (synthetic_check p' w.Fuzz.Driver.schedule = None))
      steps;
    List.iteri
      (fun i _ ->
        let s' = List.filteri (fun j _ -> j <> i) w.Fuzz.Driver.schedule in
        Alcotest.(check bool) "dropping a schedule entry loses the failure" true
          (synthetic_check w.Fuzz.Driver.program s' = None))
      w.Fuzz.Driver.schedule;
    Alcotest.(check bool) "replay line names the campaign" true
      (String.length (Fuzz.Driver.replay_line w) > 0)

let shrink_none_on_passing_pair seed =
  let p, sched = List.hd (gen_pairs ~seed 1) in
  Alcotest.(check bool) "nothing to shrink on a passing pair" true
    (Fuzz.Driver.shrink_with
       ~check:(fun _ _ -> None)
       ~kind:Fuzz.Oracle.Backend ~seed ~found_at:1 p sched
    = None)

(* ---- driver ---- *)

let driver_run_deterministic seed =
  let run () =
    let o = Fuzz.Driver.run ~oracle:Fuzz.Oracle.Backend ~budget:40 ~seed () in
    ( o.Fuzz.Driver.stats.Fuzz.Driver.execs,
      o.Fuzz.Driver.stats.Fuzz.Driver.interesting,
      o.Fuzz.Driver.stats.Fuzz.Driver.coverage_bits,
      o.Fuzz.Driver.stats.Fuzz.Driver.curve,
      List.map
        (fun (e : Fuzz.Corpus.entry) ->
          render (e.Fuzz.Corpus.program, e.Fuzz.Corpus.schedule))
        o.Fuzz.Driver.corpus )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "campaign deterministic in (oracle,budget,seed)" true
    (a = b)

let driver_clean_campaign seed =
  let o = Fuzz.Driver.run ~oracle:Fuzz.Oracle.Determinism ~budget:30 ~seed () in
  Alcotest.(check int) "no divergence" 0
    o.Fuzz.Driver.stats.Fuzz.Driver.divergences;
  Alcotest.(check bool) "no witness" true (o.Fuzz.Driver.witness = None);
  Alcotest.(check int) "budget spent" 30 o.Fuzz.Driver.stats.Fuzz.Driver.execs;
  Alcotest.(check bool) "coverage curve monotone" true
    (let rec mono = function
       | (x1, b1) :: ((x2, b2) :: _ as tl) -> x1 < x2 && b1 < b2 && mono tl
       | _ -> true
     in
     mono o.Fuzz.Driver.stats.Fuzz.Driver.curve)

(* ---- seeded-mutant regression ---- *)

let mutant_sweep_catches_all seed =
  let results = Fuzz.Oracle.mutant_sweep ~budget:400 ~seed in
  Alcotest.(check int) "four seeded mutants" 4 (List.length results);
  List.iter
    (fun (r : Fuzz.Oracle.mutant_result) ->
      if not r.Fuzz.Oracle.caught then
        Alcotest.failf "mutant %s escaped: %s" r.Fuzz.Oracle.mutant
          r.Fuzz.Oracle.detail;
      Alcotest.(check bool)
        (r.Fuzz.Oracle.mutant ^ " witness non-trivial")
        true (r.Fuzz.Oracle.witness_size > 0))
    results

let suite =
  [
    seeded_test "generator: well-formed by construction" gen_well_formed;
    seeded_test "generator: solo termination and one decision each"
      gen_solo_termination;
    qcheck_to_alcotest prop_gen_never_oob;
    seeded_test "generator: one-shot inputs" gen_inputs_oneshot;
    seeded_test "replay: trace within the given schedule" run_respects_schedule;
    seeded_test "corpus: campaigns replay byte-for-byte from the seed"
      corpus_replay_determinism;
    seeded_test "corpus: only interesting inputs admitted" corpus_admission;
    seeded_test "corpus: mutation operators preserve well-formedness"
      mutation_closure;
    seeded_test "coverage: signatures stable and non-empty"
      coverage_signature_stable;
    seeded_test "coverage: accumulator counts exactly the new bits"
      coverage_accumulation;
    seeded_test "oracles: clean on generated inputs"
      oracles_pass_on_generated_inputs;
    seeded_test "oracle: linearize modes agree on a scan-heavy history"
      linearize_oracle_scan_heavy;
    seeded_test "shrink: joint witness is 1-minimal and re-fails"
      shrunk_witness_is_1_minimal;
    seeded_test "shrink: nothing to do on a passing pair"
      shrink_none_on_passing_pair;
    seeded_test "driver: deterministic campaign" driver_run_deterministic;
    seeded_test "driver: clean budgeted campaign, monotone coverage curve"
      driver_clean_campaign;
    seeded_test "mutants: every seeded mutant caught within budget"
      mutant_sweep_catches_all;
  ]
