(* Tests of the snapshot implementations: sequential semantics,
   randomized linearizability checking against the Wing–Gong checker,
   and a negative control (a deliberately broken snapshot must be caught). *)

open Helpers
open Shm

type script = [ `Update of int * int | `Scan ] list

(* A tester process performs its script against the snapshot API and
   announces each completed operation with an encoded Output marker. *)
let tester ~(api : Snapshot.Snap_api.t) (script : script) =
  let rec go (api : Snapshot.Snap_api.t) = function
    | [] -> Program.stop
    | `Update (i, v) :: rest ->
      api.update i (vi v) (fun api ->
          Program.yield (Spec.Linearize.encode_update ~i ~v:(vi v)) (go api rest))
    | `Scan :: rest ->
      api.scan (fun api view ->
          Program.yield (Spec.Linearize.encode_scan view) (go api rest))
  in
  Program.await (fun _ -> go api script)

(* Deliberately broken snapshot: a single collect, no double-collect
   validation.  Non-atomic; the checker must catch it on some schedule. *)
let broken_single_collect ~off ~len : Snapshot.Snap_api.t =
  let rec api () : Snapshot.Snap_api.t =
    let update i v k = Program.write (off + i) v (fun () -> k (api ())) in
    let scan k =
      let rec collect i acc =
        if i >= len then k (api ()) (Array.of_list (List.rev acc))
        else Program.read (off + i) (fun v -> collect (i + 1) (v :: acc))
      in
      collect 0 []
    in
    { Snapshot.Snap_api.components = len; update; scan }
  in
  api ()

let registers_for impl ~r ~n =
  match impl with `Sw -> n | `Atomic | `Double | `Broken -> r

let api_for impl ~r ~n ~pid =
  match impl with
  | `Atomic -> Snapshot.Atomic.make ~off:0 ~len:r
  | `Double -> Snapshot.Double_collect.make ~off:0 ~len:r ~pid ()
  | `Sw -> Snapshot.Mw_from_sw.make ~off:0 ~n ~components:r ~pid
  | `Broken -> broken_single_collect ~off:0 ~len:r

(* Random scripts: each process performs [ops] operations over [r]
   components with per-(pid,seed) deterministic contents. *)
let random_script ~rng ~r ~ops ~pid =
  List.init ops (fun j ->
      if Rng.int rng 2 = 0 then `Scan
      else `Update (Rng.int rng r, (100 * pid) + j))

let run_history impl ~r ~n ~seed ~ops =
  let rng = Rng.create (seed * 7919) in
  let procs =
    Array.init n (fun pid ->
        tester ~api:(api_for impl ~r ~n ~pid) (random_script ~rng ~r ~ops ~pid))
  in
  let config = Config.create ~registers:(registers_for impl ~r ~n) ~procs () in
  let inputs = Exec.oneshot_inputs (Array.make n (vi 0)) in
  let res =
    Exec.run ~record:true ~sched:(Schedule.random ~seed n) ~inputs ~max_steps:100_000
      config
  in
  (match res.Exec.stopped with
  | Exec.All_quiescent -> ()
  | Exec.Fuel_exhausted -> Alcotest.fail "tester run did not finish");
  Spec.Linearize.history_of_trace res.Exec.trace

let check_impl impl ~seeds () =
  let r = 3 and n = 3 and ops = 5 in
  for seed = 0 to seeds - 1 do
    let h = run_history impl ~r ~n ~seed ~ops in
    if not (Spec.Linearize.check ~components:r h) then
      Alcotest.failf "seed %d: non-linearizable history:@.%a" seed
        Fmt.(list ~sep:cut Spec.Linearize.pp_event)
        h
  done

(* Sequential sanity for every implementation. *)
let sequential_semantics impl () =
  let r = 4 in
  let script = [ `Update (0, 1); `Update (2, 3); `Scan; `Update (0, 5); `Scan ] in
  let procs = [| tester ~api:(api_for impl ~r ~n:1 ~pid:0) script |] in
  let config = Config.create ~registers:(registers_for impl ~r ~n:1) ~procs () in
  let inputs = Exec.oneshot_inputs [| vi 0 |] in
  let res = Exec.run ~record:true ~sched:(Schedule.solo 0) ~inputs ~max_steps:50_000 config in
  let h = Spec.Linearize.history_of_trace res.Exec.trace in
  Alcotest.(check int) "five ops" 5 (List.length h);
  Alcotest.(check bool) "linearizable" true (Spec.Linearize.check ~components:r h);
  (* the final scan must literally be [5; ⊥; 3; ⊥] *)
  match List.rev h with
  | { op = Spec.Linearize.Scan { view }; _ } :: _ ->
    check_value "c0" (vi 5) view.(0);
    check_value "c1" Value.bot view.(1);
    check_value "c2" (vi 3) view.(2);
    check_value "c3" Value.bot view.(3)
  | _ -> Alcotest.fail "last op should be a scan"

(* The broken implementation must be caught on at least one seed. *)
let broken_is_caught () =
  let r = 3 and n = 3 and ops = 6 in
  let caught = ref false in
  (try
     for seed = 0 to 199 do
       let h = run_history `Broken ~r ~n ~seed ~ops in
       if not (Spec.Linearize.check ~components:r h) then begin
         caught := true;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool) "single-collect snapshot caught" true !caught

(* The agreement algorithms behave identically over register-level
   snapshots: safety and round-robin termination are preserved. *)
let algorithms_over_register_snapshots () =
  [ Agreement.Instances.Double_collect; Agreement.Instances.Sw_based ]
  |> List.iter (fun impl ->
         let p = Agreement.Params.make ~n:4 ~m:1 ~k:2 in
         let result =
           Agreement.Runner.run_oneshot ~impl
             ~sched:(Schedule.quantum_round_robin ~quantum:600 4)
             p
         in
         assert_all_done ~ops:1 result;
         assert_safe ~k:2 result;
         for seed = 0 to 9 do
           let result = Agreement.Runner.run_oneshot ~impl ~sched:(Schedule.random ~seed 4) p in
           assert_safe ~k:2 result
         done)

(* The repeated algorithm, too, runs over both register-level
   snapshots, completing multiple instances. *)
let repeated_over_register_snapshots () =
  [ Agreement.Instances.Double_collect; Agreement.Instances.Sw_based ]
  |> List.iter (fun impl ->
         let p = Agreement.Params.make ~n:3 ~m:1 ~k:1 in
         let result =
           Agreement.Runner.run_repeated ~impl ~rounds:3
             ~sched:(Schedule.quantum_round_robin ~quantum:3000 3)
             ~max_steps:3_000_000 p
         in
         assert_all_done ~ops:3 result;
         assert_safe ~k:1 result;
         for seed = 0 to 4 do
           let result =
             Agreement.Runner.run_repeated ~impl ~rounds:2
               ~sched:(Schedule.random ~seed 3) ~max_steps:200_000 p
           in
           assert_safe ~k:1 result
         done)

(* The SW-based snapshot uses exactly n registers — the min(·,n) branch
   of Theorem 7. *)
let sw_snapshot_uses_n_registers () =
  (* n=4, m=2, k=2: r_oneshot = 6 > n = 4, so the SW implementation wins *)
  let p = Agreement.Params.make ~n:4 ~m:2 ~k:2 in
  let result =
    Agreement.Runner.run_oneshot ~impl:Agreement.Instances.Sw_based
      ~sched:(Schedule.quantum_round_robin ~quantum:800 4)
      p
  in
  assert_all_done ~ops:1 result;
  assert_safe ~k:2 result;
  Alcotest.(check bool) "at most n registers" true
    (Agreement.Runner.registers_used result <= 4)

let suite =
  [
    test "atomic: sequential semantics" (sequential_semantics `Atomic);
    test "double-collect: sequential semantics" (sequential_semantics `Double);
    test "sw-based: sequential semantics" (sequential_semantics `Sw);
    slow_test "atomic: linearizable on 60 random histories" (check_impl `Atomic ~seeds:60);
    slow_test "double-collect: linearizable on 60 random histories"
      (check_impl `Double ~seeds:60);
    slow_test "sw-based: linearizable on 60 random histories" (check_impl `Sw ~seeds:60);
    slow_test "negative control: single-collect snapshot is caught" broken_is_caught;
    slow_test "agreement algorithms run over register snapshots"
      algorithms_over_register_snapshots;
    slow_test "repeated algorithm over register snapshots"
      repeated_over_register_snapshots;
    test "sw snapshot stays within n registers" sw_snapshot_uses_n_registers;
  ]
