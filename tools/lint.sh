#!/usr/bin/env sh
# Source-level lint gate (CI: runs before the build).
#
# Rules:
#   1. Obj.magic is banned everywhere.
#   2. Every module under lib/ has an explicit interface (.mli) —
#      the library surface is always documented and sealed.
#   3. The native multicore layer (lib/native) holds no non-Atomic
#      mutable state: no `mutable` record fields, no `ref` cells.
#      Everything shared is Atomic.t by construction, so any TSan
#      finding is a real bug, not a benign race on bookkeeping.
#   4. The simulator's pure core (lib/shm value/program/event/config)
#      holds no mutable state at all: configurations must stay
#      persistent values so explorers can branch and replay them.
#      Allowlisted exceptions, each with a documented soundness story:
#        - lib/shm/memory.ml — the journaled backend mutates a shared
#          flat array behind a persistent interface (undo journal;
#          see docs/PERFORMANCE.md)
#        - lib/shm/value.ml — weak intern tables for hash-consing
#          (physically mutable, observationally pure)
#
# Exits non-zero listing every offender.

set -u
cd "$(dirname "$0")/.."
fail=0

# 1. Obj.magic ------------------------------------------------------
if grep -rn "Obj\.magic" lib bin bench test --include='*.ml' --include='*.mli' 2>/dev/null; then
  echo "lint: Obj.magic is banned" >&2
  fail=1
fi

# 2. missing interfaces --------------------------------------------
for ml in lib/*/*.ml; do
  if [ ! -f "${ml}i" ]; then
    echo "lint: $ml has no interface (${ml}i)" >&2
    fail=1
  fi
done

# 3. non-Atomic mutable state in lib/native ------------------------
if grep -En "(^|[^[:alnum:]_])mutable[[:space:]]" lib/native/*.ml lib/native/*.mli 2>/dev/null; then
  echo "lint: mutable record field in lib/native (use Atomic.t)" >&2
  fail=1
fi
if grep -En "(^|[^_[:alnum:]])ref([^_[:alnum:]]|$)" lib/native/*.ml 2>/dev/null \
  | grep -v "data-race"; then
  echo "lint: ref cell in lib/native (use Atomic.t)" >&2
  fail=1
fi

# 4. mutable state in the shm pure core ----------------------------
# Scope: the modules whose values explorers treat as persistent data.
# (schedule.ml, rng.ml, analysis.ml, exec.ml are deliberately stateful
# drivers and stay out of scope.)
# Allowlist: memory.ml (journaled backend), value.ml (hash-cons table).
shm_pure="lib/shm/program.ml lib/shm/event.ml lib/shm/config.ml"
if grep -En "(^|[^[:alnum:]_])(mutable[[:space:]]|ref([^_[:alnum:]]|$))" $shm_pure 2>/dev/null; then
  echo "lint: mutable state in the shm pure core (keep configurations persistent;" >&2
  echo "      if a backend truly needs mutation, add it to the lint allowlist with" >&2
  echo "      a soundness note like lib/shm/memory.ml)" >&2
  fail=1
fi

# 5. interface documentation in the analysis layers ----------------
# Every lib/analyze and lib/spec interface opens with a top-level
# odoc comment: the static-analysis and model-checking surfaces carry
# their soundness statements in the .mli, and `dune build @doc` only
# checks syntax, not presence.
for mli in lib/analyze/*.mli lib/spec/*.mli; do
  first=$(grep -m1 -v '^[[:space:]]*$' "$mli")
  case "$first" in
    "(**"*) ;;
    *)
      echo "lint: $mli does not open with a top-level odoc comment" >&2
      fail=1
      ;;
  esac
done

if [ "$fail" -eq 0 ]; then
  echo "lint: ok"
fi
exit "$fail"
